(** The parallel design-space exploration engine: the domain pool, the
    jobs-invariance of the Section-4 search, per-candidate failure
    isolation, and the persistent exploration cache. *)

let fresh_cache_dir () = Filename.temp_dir "gpcc_test_cache" ""

(* score equality must treat -inf = -inf as equal (a failed measurement
   is a legitimate, shareable score) *)
let score_t =
  Alcotest.testable Fmt.float (fun a b -> a = b || Float.abs (a -. b) <= 1e-9)

(* --- the pool itself --- *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let got = Gpcc_core.Pool.with_pool ~jobs (fun p ->
          Gpcc_core.Pool.map p (fun x -> x * x) xs)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "squares in order (jobs=%d)" jobs)
        (List.map (fun x -> x * x) xs)
        got)
    [ 1; 4 ]

let test_pool_failure_isolation () =
  let xs = [ 1; 2; 3; 4; 5 ] in
  let f x = if x mod 2 = 0 then failwith (string_of_int x) else x * 10 in
  List.iter
    (fun jobs ->
      let results = Gpcc_core.Pool.run ~jobs f xs in
      let show = function
        | Ok y -> Printf.sprintf "ok:%d" y
        | Error e -> "err:" ^ Printexc.to_string e
      in
      Alcotest.(check (list string))
        (Printf.sprintf "per-element results (jobs=%d)" jobs)
        [ "ok:10"; "err:Failure(\"2\")"; "ok:30"; "err:Failure(\"4\")";
          "ok:50" ]
        (List.map show results);
      (* map re-raises the earliest failing element *)
      match
        Gpcc_core.Pool.with_pool ~jobs (fun p -> Gpcc_core.Pool.map p f xs)
      with
      | _ -> Alcotest.fail "map should re-raise"
      | exception Failure m ->
          Alcotest.(check string)
            (Printf.sprintf "earliest error wins (jobs=%d)" jobs)
            "2" m)
    [ 1; 4 ]

let test_pool_reuse_and_shutdown () =
  let p = Gpcc_core.Pool.create ~jobs:3 () in
  Alcotest.(check int) "workers" 3 (Gpcc_core.Pool.size p);
  let a = Gpcc_core.Pool.map p succ [ 1; 2; 3 ] in
  let b = Gpcc_core.Pool.map p succ [ 4; 5 ] in
  Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
  Alcotest.(check (list int)) "second batch" [ 5; 6 ] b;
  Gpcc_core.Pool.shutdown p;
  Gpcc_core.Pool.shutdown p;
  (* after shutdown the pool degrades to sequential, it does not hang *)
  Alcotest.(check (list int))
    "post-shutdown map" [ 7 ]
    (Gpcc_core.Pool.map p succ [ 6 ])

(* --- jobs-invariance of the search --- *)

let sim_measure cfg w n =
  Gpcc_workloads.Workload.measure_gflops ~sample:1 ~streams:3 cfg w n

let search_best ~jobs ?cache ?cache_prefix name n =
  let w = Gpcc_workloads.Registry.find_exn name in
  let k = Gpcc_workloads.Workload.parse w n in
  let cands =
    Gpcc_core.Explore.search ~cfg:Util.cfg280 ~jobs ?cache ?cache_prefix k
      ~measure:(sim_measure Util.cfg280 w n)
  in
  (cands, Gpcc_core.Explore.best cands)

let test_parallel_matches_sequential () =
  List.iter
    (fun name ->
      let cands1, best1 = search_best ~jobs:1 name 64 in
      let cands4, best4 = search_best ~jobs:4 name 64 in
      Alcotest.(check int)
        (name ^ ": same candidate count")
        (List.length cands1) (List.length cands4);
      List.iter2
        (fun (a : Gpcc_core.Explore.candidate)
             (b : Gpcc_core.Explore.candidate) ->
          Alcotest.(check (pair int int))
            (name ^ ": same candidate order")
            (a.target_block_threads, a.merge_degree)
            (b.target_block_threads, b.merge_degree);
          Alcotest.check score_t (name ^ ": same score") a.score b.score)
        cands1 cands4;
      match (best1, best4) with
      | Some b1, Some b4 ->
          Alcotest.(check (pair int int))
            (name ^ ": same best config")
            (b1.target_block_threads, b1.merge_degree)
            (b4.target_block_threads, b4.merge_degree);
          Alcotest.(check string)
            (name ^ ": byte-identical chosen kernel")
            (Gpcc_ast.Pp.kernel_to_string ~launch:b1.result.launch
               b1.result.kernel)
            (Gpcc_ast.Pp.kernel_to_string ~launch:b4.result.launch
               b4.result.kernel)
      | _ -> Alcotest.failf "%s: search found no best candidate" name)
    [ "mm"; "tp" ]

(* --- failure isolation in the sweep --- *)

let test_raising_candidate_isolated () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let k = Gpcc_workloads.Workload.parse w 64 in
  (* deliberately blow up the measurement of every >=32-thread version
     (at n=64 the compiled blocks are 16..64 threads); the sweep must
     complete and still pick among the surviving ones *)
  let measure kernel launch =
    if Gpcc_ast.Ast.threads_per_block launch >= 32 then
      failwith "injected measurement fault"
    else sim_measure Util.cfg280 w 64 kernel launch
  in
  List.iter
    (fun jobs ->
      let cands, failures =
        Gpcc_core.Explore.search_with_failures ~cfg:Util.cfg280 ~jobs k
          ~measure
      in
      let poisoned, healthy =
        List.partition
          (fun (c : Gpcc_core.Explore.candidate) ->
            c.score = Float.neg_infinity)
          cands
      in
      if List.length poisoned = 0 then
        Alcotest.failf "jobs=%d: fault was never injected" jobs;
      if List.length healthy = 0 then
        Alcotest.failf "jobs=%d: no candidate survived" jobs;
      if
        not
          (List.exists
             (fun (f : Gpcc_core.Explore.failure) ->
               f.failed_stage = `Measure
               && Util.contains ~needle:"injected measurement fault" f.reason)
             failures)
      then Alcotest.failf "jobs=%d: fault not reported in failures" jobs;
      match Gpcc_core.Explore.best cands with
      | Some b ->
          if b.score = Float.neg_infinity then
            Alcotest.failf "jobs=%d: best is a poisoned candidate" jobs
      | None -> Alcotest.failf "jobs=%d: sweep aborted" jobs)
    [ 1; 4 ]

(* --- the persistent cache --- *)

let test_cache_roundtrip () =
  let dir = fresh_cache_dir () in
  let c = Gpcc_core.Explore_cache.open_dir ~dir () in
  Alcotest.(check (option (float 0.))) "empty" None
    (Gpcc_core.Explore_cache.find c "k1");
  Gpcc_core.Explore_cache.store c "k1" 123.456;
  Gpcc_core.Explore_cache.store c "k2" Float.neg_infinity;
  Alcotest.(check (option (float 1e-12)))
    "memo hit" (Some 123.456)
    (Gpcc_core.Explore_cache.find c "k1");
  (* a fresh handle on the same directory reads from disk *)
  let c2 = Gpcc_core.Explore_cache.open_dir ~dir () in
  Alcotest.(check (option (float 1e-12)))
    "disk round-trip" (Some 123.456)
    (Gpcc_core.Explore_cache.find c2 "k1");
  Alcotest.(check bool)
    "-inf survives" true
    (Gpcc_core.Explore_cache.find c2 "k2" = Some Float.neg_infinity);
  Alcotest.(check int) "entries" 2 (Gpcc_core.Explore_cache.entries c2);
  Alcotest.(check int) "hits" 2 (Gpcc_core.Explore_cache.hits c2);
  Alcotest.(check int) "misses" 1 (Gpcc_core.Explore_cache.misses c);
  Gpcc_core.Explore_cache.clear c2;
  Alcotest.(check int) "cleared" 0 (Gpcc_core.Explore_cache.entries c2);
  Alcotest.(check (option (float 0.)))
    "gone after clear" None
    (Gpcc_core.Explore_cache.find c2 "k1")

let test_cached_search_identical () =
  let dir = fresh_cache_dir () in
  let cold = Gpcc_core.Explore_cache.open_dir ~dir () in
  let cands_cold, _ =
    search_best ~jobs:1 ~cache:cold ~cache_prefix:"t/mm/64" "mm" 64
  in
  let measured = Gpcc_core.Explore_cache.entries cold in
  Alcotest.(check bool) "cold run measured something" true (measured > 0);
  (* fresh handle: every distinct version must now come from disk, and
     the scored sweep must be identical — also under a parallel pool *)
  List.iter
    (fun jobs ->
      let warm = Gpcc_core.Explore_cache.open_dir ~dir () in
      let cands_warm, _ =
        search_best ~jobs ~cache:warm ~cache_prefix:"t/mm/64" "mm" 64
      in
      Alcotest.(check int)
        (Printf.sprintf "all hits (jobs=%d)" jobs)
        measured
        (Gpcc_core.Explore_cache.hits warm);
      Alcotest.(check int)
        (Printf.sprintf "no misses (jobs=%d)" jobs)
        0
        (Gpcc_core.Explore_cache.misses warm);
      List.iter2
        (fun (a : Gpcc_core.Explore.candidate)
             (b : Gpcc_core.Explore.candidate) ->
          Alcotest.check score_t
            (Printf.sprintf "identical score t=%d d=%d (jobs=%d)"
               a.target_block_threads a.merge_degree jobs)
            a.score b.score)
        cands_cold cands_warm)
    [ 1; 4 ]

(* --- the model-guided funnel --- *)

let funnel_search ~jobs ?cache ?cache_prefix ?prune_threshold name n =
  let w = Gpcc_workloads.Registry.find_exn name in
  let k = Gpcc_workloads.Workload.parse w n in
  Gpcc_core.Explore.search_funnel ~cfg:Util.cfg280 ~jobs ?cache ?cache_prefix
    ?prune_threshold
    ~budget_sensitive:(Gpcc_workloads.Workload.budget_sensitive w n)
    k
    ~predict:(Gpcc_workloads.Workload.predict_gflops Util.cfg280 w n)
    ~measure:
      (Gpcc_workloads.Workload.measure_gflops_blocks ~sample:1 ~streams:3
         Util.cfg280 w n)

(* the tentpole invariant: over every registry workload the pruned
   funnel must select the same configuration as the exhaustive sweep,
   while fully measuring strictly fewer versions than it compiled *)
let test_funnel_matches_exhaustive () =
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      let name = w.name and n = w.test_size in
      let _, ex_best = search_best ~jobs:1 name n in
      let cands, _, stats = funnel_search ~jobs:1 name n in
      let fu_best = Gpcc_core.Explore.best_measured cands in
      (match (ex_best, fu_best) with
      | Some e, Some f ->
          Alcotest.(check (pair int int))
            (name ^ ": funnel picks the exhaustive winner")
            (e.target_block_threads, e.merge_degree)
            (f.target_block_threads, f.merge_degree);
          Alcotest.check score_t
            (name ^ ": winner's score is the full measurement")
            e.score f.score
      | _ -> Alcotest.failf "%s: a sweep found no winner" name);
      Alcotest.(check bool)
        (name ^ ": fully measured fewer than compiled")
        true
        (stats.f_measured < stats.f_configs);
      Alcotest.(check bool)
        (name ^ ": probed every distinct version")
        true
        (stats.f_predicted <= stats.f_distinct))
    (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras)

let test_funnel_provenance () =
  let cands, _, stats = funnel_search ~jobs:1 "mm" 64 in
  let count p =
    List.length
      (List.filter (fun (c : Gpcc_core.Explore.candidate) -> p c.provenance)
         cands)
  in
  Alcotest.(check bool)
    "at least one fully measured candidate" true
    (count (fun p -> p = `Measured) > 0);
  Alcotest.(check bool)
    "pruning happened iff stats say so" true
    (stats.f_pruned > 0 = (count (fun p -> p = `Pruned) > 0));
  (* every candidate carries some provenance and a comparable score *)
  List.iter
    (fun (c : Gpcc_core.Explore.candidate) ->
      match c.provenance with
      | `Measured | `Halved _ | `Pruned | `Predicted -> ())
    cands;
  match Gpcc_core.Explore.best_measured cands with
  | Some b ->
      Alcotest.(check bool)
        "winner is a full measurement" true
        (b.provenance = `Measured)
  | None -> Alcotest.fail "no winner"

let test_funnel_warm_cache () =
  let dir = fresh_cache_dir () in
  let run () =
    (* a fresh handle each time: warm must hit the disk, not a
       previous handle's in-memory memo *)
    let cache = Gpcc_core.Explore_cache.open_dir ~dir () in
    let r = funnel_search ~jobs:1 ~cache ~cache_prefix:"t/mm/64" "mm" 64 in
    (r, cache)
  in
  let (cold_cands, _, _), _ = run () in
  let (warm_cands, _, _), warm_cache = run () in
  Alcotest.(check int) "warm funnel never re-measures" 0
    (Gpcc_core.Explore_cache.misses warm_cache);
  List.iter2
    (fun (a : Gpcc_core.Explore.candidate) (b : Gpcc_core.Explore.candidate) ->
      Alcotest.check score_t
        (Printf.sprintf "identical score t=%d d=%d" a.target_block_threads
           a.merge_degree)
        a.score b.score;
      Alcotest.(check bool)
        (Printf.sprintf "identical provenance t=%d d=%d"
           a.target_block_threads a.merge_degree)
        true
        (a.provenance = b.provenance))
    cold_cands warm_cands

(* [f_partial_runs] counts executed rung measurements only: a warm
   replay serves every rung from the cache and must report 0 (rd is
   multi-phase, so its funnel actually takes the halving path) *)
let test_funnel_partial_runs_count_executions () =
  let w = Gpcc_workloads.Registry.find_exn "rd" in
  let n = w.test_size in
  let dir = fresh_cache_dir () in
  let run () =
    let cache = Gpcc_core.Explore_cache.open_dir ~dir () in
    funnel_search ~jobs:1 ~cache ~cache_prefix:"t/rd" "rd" n
  in
  let _, _, cold = run () in
  let _, _, warm = run () in
  Alcotest.(check bool) "cold rungs executed their measurements" true
    (cold.f_rungs = 0 || cold.f_partial_runs > 0);
  Alcotest.(check int) "warm replay executes no partial simulations" 0
    warm.f_partial_runs

(* a funnel and an exhaustive sweep share full-measurement entries: the
   funnel's finals must be served from the exhaustive run's cache *)
let test_funnel_shares_full_cache () =
  let dir = fresh_cache_dir () in
  let cache = Gpcc_core.Explore_cache.open_dir ~dir () in
  let _ = search_best ~jobs:1 ~cache ~cache_prefix:"t/mm/64" "mm" 64 in
  let full_entries = Gpcc_core.Explore_cache.entries cache in
  let cache2 = Gpcc_core.Explore_cache.open_dir ~dir () in
  let cands, _, stats =
    funnel_search ~jobs:1 ~cache:cache2 ~cache_prefix:"t/mm/64" "mm" 64
  in
  (* probes are new entries; full measurements are not *)
  Alcotest.(check int)
    "only probe entries added"
    (full_entries + stats.f_predicted)
    (Gpcc_core.Explore_cache.entries cache2);
  match Gpcc_core.Explore.best_measured cands with
  | Some _ -> ()
  | None -> Alcotest.fail "no winner"

(* --- cache corruption hardening --- *)

let test_cache_corrupt_entry () =
  let dir = fresh_cache_dir () in
  let c = Gpcc_core.Explore_cache.open_dir ~dir () in
  Gpcc_core.Explore_cache.store c "k1" 42.0;
  (* the store shards entries into two-hex-digit subdirectories; find
     the single entry file wherever it landed *)
  let entry_files () =
    Sys.readdir dir |> Array.to_list
    |> List.concat_map (fun n ->
           let sub = Filename.concat dir n in
           if Sys.is_directory sub then
             Sys.readdir sub |> Array.to_list |> List.map (Filename.concat sub)
           else [])
  in
  let file =
    match entry_files () with
    | [ f ] -> f
    | fs ->
        Alcotest.failf "expected exactly one entry file, got %d"
          (List.length fs)
  in
  let overwrite content =
    let oc = open_out_bin file in
    output_string oc content;
    close_out oc
  in
  let check_dropped what =
    (* a fresh handle, so the in-memory memo cannot mask the disk *)
    let c2 = Gpcc_core.Explore_cache.open_dir ~dir () in
    Alcotest.(check (option (float 0.)))
      (what ^ " reads as a miss") None
      (Gpcc_core.Explore_cache.find c2 "k1");
    Alcotest.(check bool)
      (what ^ " is deleted on read") false (Sys.file_exists file)
  in
  (* truncated: the writer died mid-header *)
  overwrite "gpcc-store-v1 score";
  check_dropped "truncated entry";
  Gpcc_core.Explore_cache.store c "k1" 42.0;
  (* envelope intact but the payload is not a float *)
  overwrite "gpcc-store-v1 score 1 2 11\nk1not-a-float";
  check_dropped "garbage score";
  (* after deletion the slot is reusable *)
  Gpcc_core.Explore_cache.store c "k1" 7.5;
  let c3 = Gpcc_core.Explore_cache.open_dir ~dir () in
  Alcotest.(check (option (float 1e-12)))
    "re-stored after corruption" (Some 7.5)
    (Gpcc_core.Explore_cache.find c3 "k1");
  (* a well-formed entry storing a different key (digest collision
     guard) is a miss but NOT deleted *)
  let oc = open_out_bin file in
  output_string oc "gpcc-store-v1 score 1 14 6\nsome-other-key0x1p+1";
  close_out oc;
  let c4 = Gpcc_core.Explore_cache.open_dir ~dir () in
  Alcotest.(check (option (float 0.)))
    "foreign key is a miss" None
    (Gpcc_core.Explore_cache.find c4 "k1");
  Alcotest.(check bool)
    "foreign entry is preserved" true (Sys.file_exists file)

let suite =
  ( "explore",
    [
      Alcotest.test_case "pool: map preserves order" `Quick
        test_pool_map_order;
      Alcotest.test_case "pool: per-task failure isolation" `Quick
        test_pool_failure_isolation;
      Alcotest.test_case "pool: reuse and shutdown" `Quick
        test_pool_reuse_and_shutdown;
      Alcotest.test_case "search: parallel == sequential (mm, tp)" `Slow
        test_parallel_matches_sequential;
      Alcotest.test_case "search: raising candidate is isolated" `Slow
        test_raising_candidate_isolated;
      Alcotest.test_case "cache: round-trip" `Quick test_cache_roundtrip;
      Alcotest.test_case "cache: cached search returns identical scores"
        `Slow test_cached_search_identical;
      Alcotest.test_case "funnel: same winner as exhaustive (all workloads)"
        `Slow test_funnel_matches_exhaustive;
      Alcotest.test_case "funnel: provenance" `Slow test_funnel_provenance;
      Alcotest.test_case "funnel: warm cache never re-measures" `Slow
        test_funnel_warm_cache;
      Alcotest.test_case "funnel: shares full measurements with exhaustive"
        `Slow test_funnel_shares_full_cache;
      Alcotest.test_case "funnel: partial_runs counts executions only"
        `Slow test_funnel_partial_runs_count_executions;
      Alcotest.test_case "cache: corrupt entries dropped and deleted" `Quick
        test_cache_corrupt_entry;
    ] )

lib/sim/config.pp.ml: Ppx_deriving_runtime

lib/passes/merge.pp.mli: Gpcc_ast Pass_util

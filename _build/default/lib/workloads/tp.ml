(** Matrix transpose (paper Table 1: "tp", 11 LOC, 1k-8k) — the Figure 15
    bandwidth study, and the showcase for partition-camping elimination by
    diagonal block reordering. No floating-point work: the paper reports
    effective bandwidth. *)

let source n =
  Printf.sprintf
    {|#pragma gpcc output b
__kernel void tp(float a[%d][%d], float b[%d][%d]) {
  b[idx][idy] = a[idy][idx];
}
|}
    n n n n

let inputs n = [ ("a", Workload.gen ~seed:12 (n * n)) ]

let reference n input =
  let a = input "a" in
  let b = Array.make (n * n) 0.0 in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      b.((x * n) + y) <- a.((y * n) + x)
    done
  done;
  [ ("b", b) ]

let workload : Workload.t =
  {
    name = "tp";
    description = "matrix transpose";
    source;
    inputs;
    reference;
    flops = (fun _ -> 0.0);
    moved_bytes = (fun n -> 2.0 *. 4.0 *. float_of_int (n * n));
    sizes = [ 1024; 2048; 4096; 8192 ];
    test_size = 64;
    bench_size = 4096;
    tolerance = 0.0;
    in_cublas = false;
  }

(** Type-checker tests: accepted programs and each rejection class. *)

open Gpcc_ast
open Util

let accepts src =
  match Typecheck.check (Parser.kernel_of_string src) with
  | () -> ()
  | exception Typecheck.Type_error m -> Alcotest.failf "rejected: %s" m

let rejects ~reason src =
  match Typecheck.check (Parser.kernel_of_string src) with
  | () -> Alcotest.failf "accepted ill-typed program (%s)" reason
  | exception Typecheck.Type_error _ -> ()

let test_accepts_basics () =
  accepts
    {|__kernel void f(float a[32], float o[32]) {
      float x = a[idx] * 2 + 1;
      int i = idx % 4;
      o[idx] = i > 2 ? x : -x;
    }|};
  accepts
    {|__kernel void f(float o[32]) {
      float2 v = make_float2(1.0, 2.0);
      v.x = v.y + 1;
      o[idx] = v.x;
    }|};
  accepts
    {|__kernel void f(float a[4][8][16], float o[16]) {
      o[idx] = a[1][2][idx];
    }|}

let test_rejects_unbound () =
  rejects ~reason:"unbound variable"
    "__kernel void f(float o[16]) { o[idx] = nope; }";
  rejects ~reason:"unbound array"
    "__kernel void f(float o[16]) { o[idx] = a[idx]; }"

let test_rejects_rank () =
  rejects ~reason:"rank mismatch"
    "__kernel void f(float a[4][4], float o[16]) { o[idx] = a[idx]; }";
  rejects ~reason:"scalar indexed"
    "__kernel void f(float o[16]) { float x = 0; o[idx] = x[0]; }"

let test_rejects_types () =
  rejects ~reason:"float index"
    "__kernel void f(float a[16], float o[16]) { float x = 1; o[idx] = a[x]; }";
  rejects ~reason:"mod on float"
    "__kernel void f(float o[16]) { float x = 1; o[idx] = x % 2; }";
  rejects ~reason:"condition not boolean"
    "__kernel void f(float o[16]) { float x = 1; if (x) { o[idx] = 1; } }";
  rejects ~reason:"field on float"
    "__kernel void f(float o[16]) { float x = 1; o[idx] = x.y; }";
  rejects ~reason:".z on float2"
    "__kernel void f(float o[16]) { float2 v = make_float2(1.0, 2.0); o[idx] = v.z; }"

let test_rejects_structure () =
  rejects ~reason:"redeclaration"
    "__kernel void f(float o[16]) { float x = 1; float x = 2; o[idx] = x; }";
  rejects ~reason:"loop shadowing"
    "__kernel void f(float o[16]) { int i = 0; for (int i = 0; i < 4; i++) o[idx] = 1; }";
  rejects ~reason:"shared with init"
    "__kernel void f(float o[16]) { __shared__ float s[4] = 1; o[idx] = s[0]; }";
  rejects ~reason:"global sync in loop"
    "__kernel void f(float o[16]) { for (int i = 0; i < 4; i++) __global_sync(); o[idx] = 1; }";
  rejects ~reason:"assign to array"
    "__kernel void f(float a[16], float o[16]) { a = o; }"

let test_rejects_calls () =
  rejects ~reason:"unknown intrinsic"
    "__kernel void f(float o[16]) { o[idx] = frobnicate(1.0); }";
  rejects ~reason:"arity"
    "__kernel void f(float o[16]) { o[idx] = sqrtf(1.0, 2.0); }"

let test_rejects_pragmas () =
  rejects ~reason:"dim on unknown param"
    "#pragma gpcc dim q 4\n__kernel void f(float o[16]) { o[idx] = 1; }";
  rejects ~reason:"dim on array param"
    "#pragma gpcc dim o 4\n__kernel void f(float o[16]) { o[idx] = 1; }";
  rejects ~reason:"output on scalar"
    "#pragma gpcc output w\n__kernel void f(float o[16], int w) { o[idx] = 1; }";
  (* __-prefixed pragma names are compiler directives, not parameters *)
  accepts
    "#pragma gpcc dim __threads_x 64\n__kernel void f(float o[16]) { o[idx] = 1; }"

let test_int_float_promotion () =
  accepts
    {|__kernel void f(float o[16]) {
      float x = 1;
      x = x + 2;
      o[idx] = x * idx;
    }|};
  rejects ~reason:"int var from float"
    "__kernel void f(float o[16]) { int i = 1.5; o[idx] = i; }"

let test_generated_kernels_typecheck () =
  (* every optimized kernel must pass the same checker *)
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      let k = Gpcc_workloads.Workload.parse w w.test_size in
      let r = compile k in
      match Typecheck.check_result r.kernel with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s optimized kernel ill-typed: %s" w.name m)
    Gpcc_workloads.Registry.all

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "typecheck",
    [
      t "accepts basics" test_accepts_basics;
      t "rejects unbound" test_rejects_unbound;
      t "rejects rank errors" test_rejects_rank;
      t "rejects type errors" test_rejects_types;
      t "rejects structure errors" test_rejects_structure;
      t "rejects bad calls" test_rejects_calls;
      t "pragma validation" test_rejects_pragmas;
      t "int/float promotion" test_int_float_promotion;
      Alcotest.test_case "optimized kernels typecheck" `Slow
        test_generated_kernels_typecheck;
    ] )

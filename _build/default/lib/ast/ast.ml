(** Abstract syntax of the mini-CUDA kernel language.

    The language is the input and output of the optimizing compiler: a
    structured, C-like kernel language with the CUDA builtins the paper's
    analyses depend on ([idx], [idy], [tidx], [tidy], block/grid ids and
    dims), [__shared__] declarations, [__syncthreads()], and a
    [__global_sync()] grid barrier for naive reduction-style kernels.

    Design choices that matter to the compiler:
    - array accesses are always rooted at a name ([Index (a, [e1; e2])]),
      which keeps the affine index analysis of the paper's Section 3.2
      syntactic;
    - [for] loops are structured ([l_var] from [l_init] while [< l_limit]
      stepping by [l_step]), mirroring the loop shapes the paper analyzes;
    - array shapes are compile-time constants: the compiler specializes one
      kernel version per input size, exactly as the paper generates
      per-input-size versions for its empirical search. *)

type scalar =
  | Int
  | Float
  | Float2
  | Float4
  | Bool
[@@deriving show { with_path = false }, eq, ord]

(** Memory space of a declaration or array parameter. [Register] is the
    default for kernel-local scalars. *)
type space =
  | Global
  | Shared
  | Register
[@@deriving show { with_path = false }, eq, ord]

type array_ty = {
  elt : scalar;
  space : space;
  dims : int list;  (** outermost first; row-major *)
}
[@@deriving show { with_path = false }, eq, ord]

type ty =
  | Scalar of scalar
  | Array of array_ty
[@@deriving show { with_path = false }, eq, ord]

(** Thread-position builtins. [Idx]/[Idy] are the absolute element
    coordinates ([bidx*bdimx + tidx] and [bidy*bdimy + tidy]); the paper
    writes naive kernels purely in terms of them. *)
type builtin =
  | Idx
  | Idy
  | Tidx
  | Tidy
  | Bidx
  | Bidy
  | Bdimx
  | Bdimy
  | Gdimx
  | Gdimy
[@@deriving show { with_path = false }, eq, ord]

type unop =
  | Neg
  | Not
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
[@@deriving show { with_path = false }, eq, ord]

type field =
  | FX
  | FY
  | FZ
  | FW
[@@deriving show { with_path = false }, eq, ord]

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Builtin of builtin
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Index of string * expr list
      (** [a[e1][e2]...] — multi-dimensional array access rooted at a name *)
  | Vload of vload
      (** vector load, result of the vectorization pass: reads [width]
          consecutive floats of array [arr] starting at element
          [width*index] (pretty-printed as [((float2* )a)\[index\]]) *)
  | Field of expr * field  (** [e.x], [e.y], ... on vector values *)
  | Call of string * expr list  (** intrinsics: sqrtf, fmaxf, ... *)
  | Select of expr * expr * expr  (** [c ? a : b] *)
[@@deriving show { with_path = false }, eq, ord]

and vload = {
  v_arr : string;
  v_width : int;  (** 2 or 4 *)
  v_index : expr;  (** in units of the vector type *)
}
[@@deriving show { with_path = false }, eq, ord]

type lvalue =
  | Lvar of string
  | Lindex of string * expr list
  | Lfield of lvalue * field
  | Lvec of vload
      (** vector store target, result of wide vectorization:
          [((float2* )c)\[index\] = v] writes [width] consecutive floats *)
[@@deriving show { with_path = false }, eq, ord]

type stmt =
  | Decl of decl
  | Assign of lvalue * expr
  | If of expr * block * block
  | For of loop
  | Sync  (** [__syncthreads()] *)
  | Global_sync
      (** grid-wide barrier, only legal at kernel top level; used by naive
          reduction kernels (paper Section 3, "a global sync function is
          supported in the naive kernel") *)
  | Comment of string
      (** carried through passes so the optimized output stays readable *)
[@@deriving show { with_path = false }, eq, ord]

and decl = {
  d_name : string;
  d_ty : ty;
  d_init : expr option;
}
[@@deriving show { with_path = false }, eq, ord]

and loop = {
  l_var : string;
  l_init : expr;
  l_limit : expr;  (** loop runs while [l_var < l_limit] *)
  l_step : expr;  (** positive increment *)
  l_body : block;
}
[@@deriving show { with_path = false }, eq, ord]

and block = stmt list [@@deriving show { with_path = false }, eq, ord]

type param = {
  p_name : string;
  p_ty : ty;
}
[@@deriving show { with_path = false }, eq, ord]

type kernel = {
  k_name : string;
  k_params : param list;
  k_body : block;
  k_output : string list;
      (** names of output arrays, from [#pragma gpcc output] — lets the
          compiler drop global writes to temporaries staged in shared
          memory *)
  k_sizes : (string * int) list;
      (** compile-time bindings for scalar [int] parameters, from
          [#pragma gpcc dim name value] *)
}
[@@deriving show { with_path = false }, eq]

(** Kernel launch configuration, the second output of the compiler
    ("the compiler generates the optimized kernel and the parameters
    (i.e., the thread grid & block dimensions)"). *)
type launch = {
  grid_x : int;
  grid_y : int;
  block_x : int;
  block_y : int;
}
[@@deriving show { with_path = false }, eq]

let threads_per_block l = l.block_x * l.block_y
let total_blocks l = l.grid_x * l.grid_y

let scalar_size = function
  | Int | Float | Bool -> 4
  | Float2 -> 8
  | Float4 -> 16

(** Number of 32-bit registers a value of this scalar type occupies. *)
let scalar_regs = function
  | Int | Float | Bool -> 1
  | Float2 -> 2
  | Float4 -> 4

let builtin_name = function
  | Idx -> "idx"
  | Idy -> "idy"
  | Tidx -> "tidx"
  | Tidy -> "tidy"
  | Bidx -> "bidx"
  | Bidy -> "bidy"
  | Bdimx -> "bdimx"
  | Bdimy -> "bdimy"
  | Gdimx -> "gdimx"
  | Gdimy -> "gdimy"

let builtin_of_name = function
  | "idx" -> Some Idx
  | "idy" -> Some Idy
  | "tidx" -> Some Tidx
  | "tidy" -> Some Tidy
  | "bidx" -> Some Bidx
  | "bidy" -> Some Bidy
  | "bdimx" -> Some Bdimx
  | "bdimy" -> Some Bdimy
  | "gdimx" -> Some Gdimx
  | "gdimy" -> Some Gdimy
  | _ -> None

let field_name = function FX -> "x" | FY -> "y" | FZ -> "z" | FW -> "w"

let field_of_name = function
  | "x" -> Some FX
  | "y" -> Some FY
  | "z" -> Some FZ
  | "w" -> Some FW
  | _ -> None

(* Convenience constructors, used heavily by passes and tests. *)

let int n = Int_lit n
let flt f = Float_lit f
let var v = Var v
let idx = Builtin Idx
let idy = Builtin Idy
let tidx = Builtin Tidx
let tidy = Builtin Tidy
let bidx = Builtin Bidx
let bidy = Builtin Bidy
let bdimx = Builtin Bdimx
let bdimy = Builtin Bdimy

let ( +: ) a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> Int_lit (x + y)
  | e, Int_lit 0 | Int_lit 0, e -> e
  | _ -> Binop (Add, a, b)

let ( -: ) a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> Int_lit (x - y)
  | e, Int_lit 0 -> e
  | _ -> Binop (Sub, a, b)

let ( *: ) a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> Int_lit (x * y)
  | Int_lit 1, e | e, Int_lit 1 -> e
  | (Int_lit 0 as z), _ | _, (Int_lit 0 as z) -> z
  | _ -> Binop (Mul, a, b)

let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( ==: ) a b = Binop (Eq, a, b)

let lv_name = function
  | Lvar v -> v
  | Lindex (v, _) -> v
  | Lfield (Lvar v, _) | Lfield (Lindex (v, _), _) -> v
  | Lvec { v_arr; _ } -> v_arr
  | Lfield ((Lfield _ | Lvec _), _) -> invalid_arg "lv_name: nested field"

let decl_f ?init name = Decl { d_name = name; d_ty = Scalar Float; d_init = init }
let decl_i ?init name = Decl { d_name = name; d_ty = Scalar Int; d_init = init }

let decl_shared name dims =
  Decl
    {
      d_name = name;
      d_ty = Array { elt = Float; space = Shared; dims };
      d_init = None;
    }

let assign lv e = Assign (lv, e)

(** [accum lv e] builds [lv += e] (represented as [lv = lv + e]; the
    pretty-printer recovers the [+=] form). *)
let accum lv e =
  let as_expr = function
    | Lvar v -> Var v
    | Lindex (v, es) -> Index (v, es)
    | Lfield (Lvar v, f) -> Field (Var v, f)
    | Lfield (Lindex (v, es), f) -> Field (Index (v, es), f)
    | Lvec vl -> Vload vl
    | Lfield ((Lfield _ | Lvec _), _) -> invalid_arg "accum: nested field"
  in
  Assign (lv, Binop (Add, as_expr lv, e))

let for_ l_var ~from:l_init ~limit:l_limit ~step:l_step l_body =
  For { l_var; l_init; l_limit; l_step; l_body }

(** Look up the compile-time value of an [int] size parameter. *)
let size_of kernel name = List.assoc_opt name kernel.k_sizes

let param_ty kernel name =
  List.find_map
    (fun p -> if String.equal p.p_name name then Some p.p_ty else None)
    kernel.k_params

let is_output kernel name = List.exists (String.equal name) kernel.k_output

(** 1-D complex FFT — the paper's Section 7 case study.

    The naive kernel implements the Stockham autosort radix-2 FFT: one
    2-point butterfly per thread per stage, stages separated by the grid
    barrier, ping-ponging between two interleaved complex buffers. Since
    [__global_sync] is a top-level construct, the log2(n) stages are
    emitted unrolled by the source generator — the same 2-point butterfly
    the paper's 50-line naive kernel expresses with a stage loop.

    What the case study shows: the compiler's thread merge gives each
    thread several butterflies per stage (the paper's "compiler-generated
    8-point FFT"), improving throughput over the naive version without any
    algorithm change, while a hand-written higher-radix kernel (true
    algorithm change) remains out of the compiler's reach. *)

let log2 n =
  let rec go k acc = if k <= 1 then acc else go (k / 2) (acc + 1) in
  go n 0

(** One Stockham radix-2 stage: butterfly [j] of [n/2], half-block size
    [ns = 2^t], reading interleaved complex from [src], writing to [dst]. *)
let stage_src ~n ~t ~src ~dst =
  let ns = 1 lsl t in
  Printf.sprintf
    {|  int ns%d = %d;
  int k%d = idx %% ns%d;
  int b%d = idx / ns%d;
  float ang%d = -6.283185307179586 * k%d / (2 * ns%d);
  float wr%d = cosf(ang%d);
  float wi%d = sinf(ang%d);
  float ur%d = %s[2 * idx];
  float ui%d = %s[2 * idx + 1];
  float xr%d = %s[2 * (idx + %d)];
  float xi%d = %s[2 * (idx + %d) + 1];
  float vr%d = xr%d * wr%d - xi%d * wi%d;
  float vi%d = xr%d * wi%d + xi%d * wr%d;
  int o%d = 2 * b%d * ns%d + k%d;
  %s[2 * o%d] = ur%d + vr%d;
  %s[2 * o%d + 1] = ui%d + vi%d;
  %s[2 * (o%d + ns%d)] = ur%d - vr%d;
  %s[2 * (o%d + ns%d) + 1] = ui%d - vi%d;
|}
    t ns t t t t t t t t t t t t src t src t src (n / 2) t src (n / 2) t t t
    t t t t t t t t t t t dst t t t dst t t t dst t t t t dst t t t t

let source n =
  let stages = log2 n in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       {|#pragma gpcc dim __threads_x %d
#pragma gpcc output %s
__kernel void fft(float a[%d], float b[%d]) {
|}
       (n / 2)
       (if stages mod 2 = 0 then "a" else "b")
       (2 * n) (2 * n));
  for t = 0 to stages - 1 do
    let src = if t mod 2 = 0 then "a" else "b" in
    let dst = if t mod 2 = 0 then "b" else "a" in
    Buffer.add_string buf (stage_src ~n ~t ~src ~dst);
    if t < stages - 1 then Buffer.add_string buf "  __global_sync();\n"
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let inputs n = [ ("a", Workload.gen ~seed:21 (2 * n)) ]

(** CPU reference: the same Stockham iteration (identical operation
    grouping keeps float drift negligible). *)
let reference n input =
  let a = Array.copy (input "a") in
  let b = Array.make (2 * n) 0.0 in
  let src = ref a and dst = ref b in
  let stages = log2 n in
  for t = 0 to stages - 1 do
    let ns = 1 lsl t in
    for j = 0 to (n / 2) - 1 do
      let k = j mod ns and blk = j / ns in
      let ang = -6.283185307179586 *. float_of_int k /. float_of_int (2 * ns) in
      let wr = cos ang and wi = sin ang in
      let ur = !src.(2 * j) and ui = !src.((2 * j) + 1) in
      let xr = !src.(2 * (j + (n / 2))) and xi = !src.((2 * (j + (n / 2))) + 1) in
      let vr = (xr *. wr) -. (xi *. wi) and vi = (xr *. wi) +. (xi *. wr) in
      let o = (2 * blk * ns) + k in
      !dst.(2 * o) <- ur +. vr;
      !dst.((2 * o) + 1) <- ui +. vi;
      !dst.(2 * (o + ns)) <- ur -. vr;
      !dst.((2 * (o + ns)) + 1) <- ui -. vi
    done;
    let s = !src in
    src := !dst;
    dst := s
  done;
  [ ((if stages mod 2 = 0 then "a" else "b"), !src) ]

let workload : Workload.t =
  {
    name = "fft";
    description = "1-D complex FFT (Stockham radix-2)";
    source;
    inputs;
    reference;
    flops = (fun n -> 5.0 *. float_of_int n *. float_of_int (log2 n));
    moved_bytes = (fun n -> float_of_int (2 * 8 * n * log2 n));
    sizes = [ 16384; 65536; 262144 ];
    test_size = 1024;
    bench_size = 65536;
    tolerance = 1e-3;
    in_cublas = false;
  }

(** Grid-level kernel execution.

    Two modes:
    - [Full] interprets every thread block — used by correctness tests,
      which compare device output arrays against CPU references, and by
      kernels containing [__global_sync] (the grid barrier splits the body
      into phases; every block finishes phase [p] before any block starts
      phase [p+1], with per-block thread state kept alive across phases);
    - [Sampled n] interprets [n] representative blocks of the first
      resident wave and scales their (identical-by-construction) per-block
      statistics to the whole grid. The sampled blocks have consecutive
      linear ids, which is exactly the set whose simultaneous memory
      traffic determines partition camping; their aligned transaction
      streams give the partition-efficiency estimate. *)

open Gpcc_ast

type mode =
  | Full
  | Sampled of int

type result = {
  per_block : Stats.t;  (** average statistics of one thread block *)
  total : Stats.t;  (** scaled to the whole grid *)
  timing : Timing.result;
  sampled_blocks : int;
  partition_eff : float;
}

(** Split the kernel body at top-level [__global_sync] barriers. *)
let phases_of_body (body : Ast.block) : Ast.block list =
  let rec go cur acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | Ast.Global_sync :: rest -> go [] (List.rev cur :: acc) rest
    | s :: rest -> go (s :: cur) acc rest
  in
  go [] [] body

(** Static memory-level-parallelism estimate: the largest number of global
    load sites inside one innermost loop body (independent loads from one
    warp overlap their latencies). *)
let mlp_estimate (k : Ast.kernel) : float =
  let globals =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_ty with
        | Array { space = Global; _ } -> Some p.p_name
        | _ -> None)
      k.k_params
  in
  let count_sites (b : Ast.block) =
    Rewrite.collect_accesses b
    |> List.filter (fun (a, _, st) -> (not st) && List.mem a globals)
    |> List.length
  in
  (* a staging loop's iterations are independent loads: the warp keeps
     several in flight; a compute loop stalls at each load's use *)
  let is_staging_body (b : Ast.block) =
    b <> []
    && List.for_all
         (function Ast.Assign (Lindex _, _) -> true | _ -> false)
         b
  in
  let rec innermost_counts (b : Ast.block) : int list =
    List.concat_map
      (function
        | Ast.For l ->
            let inner = innermost_counts l.l_body in
            if inner <> [] then inner
            else if is_staging_body l.l_body && count_sites l.l_body > 0 then
              [ 8 ]
            else [ count_sites l.l_body ]
        | Ast.If (_, t, f) -> innermost_counts t @ innermost_counts f
        | _ -> [])
      b
  in
  let counts = innermost_counts k.k_body in
  (* straight-line kernels: every load in the body is independent *)
  let counts = if counts = [] then [ count_sites k.k_body ] else counts in
  let m = List.fold_left max 1 counts in
  float_of_int (min m 8)

(** Queue window: how many in-flight transactions per block the memory
    system can reorder across partitions. Sequential streams that cycle
    through partitions within this window reach full bandwidth; true
    camping (whole windows on one partition) does not. *)
let queue_window = 8

(** Partition efficiency from the aligned transaction streams of the
    sampled blocks: at each instant, count how many distinct partitions
    the concurrently executing blocks' next [queue_window] transactions
    cover. *)
let partition_efficiency (cfg : Config.t) (streams : int array list) : float =
  let streams = List.filter (fun s -> Array.length s > 0) streams in
  let s = List.length streams in
  if s <= 1 then 1.0
  else begin
    let len = List.fold_left (fun m a -> min m (Array.length a)) max_int streams in
    let denom = min cfg.num_partitions (s * queue_window) in
    (* keep windows fully inside the streams so tails do not skew *)
    let t_max = max 1 (len - queue_window + 1) in
    let step = max 1 (t_max / 512) in
    let slices = ref 0 and acc = ref 0.0 in
    let t = ref 0 in
    while !t < t_max do
      let seen = Array.make cfg.num_partitions false in
      List.iter
        (fun st ->
          for u = !t to min (len - 1) (!t + queue_window - 1) do
            seen.(st.(u)) <- true
          done)
        streams;
      let distinct = Array.fold_left (fun n b -> if b then n + 1 else n) 0 seen in
      acc := !acc +. (float_of_int distinct /. float_of_int denom);
      incr slices;
      t := !t + step
    done;
    if !slices = 0 then 1.0 else !acc /. float_of_int !slices
  end

let block_coords (launch : Ast.launch) (linear : int) =
  (linear mod launch.grid_x, linear / launch.grid_x)

(** Run a kernel. The caller is responsible for having bound every [int]
    parameter via [k_sizes] and allocated the arrays in [mem].
    [streams] bounds how many resident-wave blocks feed the
    partition-efficiency estimate. *)
let run ?(mode = Full) ?(streams = 12) (cfg : Config.t) (k : Ast.kernel)
    (launch : Ast.launch) (mem : Devmem.t) : result =
  let phases = phases_of_body k.k_body in
  let nblocks = Ast.total_blocks launch in
  let regs = Gpcc_analysis.Regcount.estimate k in
  let shared = Gpcc_analysis.Regcount.shared_bytes k in
  let occ0 =
    Occupancy.calc cfg ~regs_per_thread:regs ~shared_per_block:shared
      ~threads_per_block:(Ast.threads_per_block launch)
  in
  (* partition camping happens among the concurrently resident wave of
     blocks; sample that wave evenly (consecutive blocks alone miss
     schedules like the diagonal reorder, which spreads partitions across
     the wave, not between neighbors) *)
  let wave = min nblocks (cfg.num_sms * occ0.blocks_per_sm) in
  let stream_ids =
    let s = max 2 (min streams wave) in
    List.init s (fun i -> i * wave / s) |> List.sort_uniq compare
  in
  let mode = if List.length phases > 1 then Full else mode in
  let per_block, streams, sampled =
    match mode with
    | Full ->
        let stats = Stats.create () in
        let streams = ref [] in
        (* create contexts upfront so thread state persists across
           global-sync phases *)
        let ctxs =
          Array.init nblocks (fun i ->
              let bx, by = block_coords launch i in
              Interp.make_bctx ~record_tx:(List.mem i stream_ids) cfg stats k
                launch mem ~bidx:bx ~bidy:by)
        in
        List.iter
          (fun phase -> Array.iter (fun c -> Interp.run_block c phase) ctxs)
          phases;
        Array.iteri
          (fun i c ->
            if List.mem i stream_ids then
              streams :=
                Array.of_list (List.rev c.Interp.txparts) :: !streams)
          ctxs;
        (Stats.scale (1.0 /. float_of_int nblocks) stats, List.rev !streams, nblocks)
    | Sampled n ->
        (* two sample sets: statistics come from blocks spread evenly over
           the whole grid (work can vary with the block id, e.g.
           triangular kernels); partition streams come from consecutive
           first-wave blocks, the set whose simultaneous traffic causes
           camping *)
        let s = max 1 (min n nblocks) in
        let spread =
          List.init s (fun i -> i * nblocks / s) |> List.sort_uniq compare
        in
        let consec = stream_ids in
        let stats = Stats.create () in
        let stat_runs = ref 0 in
        let streams = ref [] in
        let run_one ~record ~count i =
          let bx, by = block_coords launch i in
          let local = Stats.create () in
          let c =
            Interp.make_bctx ~record_tx:record cfg local k launch mem
              ~bidx:bx ~bidy:by
          in
          (match List.iter (Interp.run_block c) phases with
          | () -> ()
          | exception Interp.Runtime_error m ->
              raise
                (Interp.Runtime_error
                   (Printf.sprintf "%s (block %d,%d)" m bx by)));
          if count then begin
            Stats.add stats local;
            incr stat_runs
          end;
          if record then
            streams := Array.of_list (List.rev c.Interp.txparts) :: !streams
        in
        List.iter
          (fun i -> run_one ~record:true ~count:(List.mem i spread) i)
          consec;
        List.iter
          (fun i -> if not (List.mem i consec) then run_one ~record:false ~count:true i)
          spread;
        let denom = float_of_int (max 1 !stat_runs) in
        (Stats.scale (1.0 /. denom) stats, List.rev !streams, !stat_runs)
  in
  per_block.Stats.loads_in_flight <- mlp_estimate k;
  let partition_eff = partition_efficiency cfg streams in
  let timing =
    Timing.estimate cfg ~per_block ~launch ~regs_per_thread:regs
      ~shared_per_block:shared ~partition_eff
      ~mlp:per_block.Stats.loads_in_flight
  in
  {
    per_block;
    total = Stats.scale (float_of_int nblocks) per_block;
    timing;
    sampled_blocks = sampled;
    partition_eff;
  }

lib/analysis/affine.pp.mli: Gpcc_ast

(** Benchmark workloads: the paper's Table 1 algorithms.

    A workload packages, for each problem size: the naive kernel source
    (the compiler's input), deterministic input data, a CPU reference
    implementation, and the operation counts used to report GFLOPS or
    effective bandwidth. *)

open Gpcc_ast

type t = {
  name : string;
  description : string;
  source : int -> string;  (** naive kernel source for problem size [n] *)
  inputs : int -> (string * float array) list;
      (** input arrays in logical row-major order *)
  reference : int -> (string -> float array) -> (string * float array) list;
      (** expected contents of the output arrays *)
  flops : int -> float;  (** floating-point operations of one run *)
  moved_bytes : int -> float;
      (** algorithmically required off-chip traffic (for bandwidth plots) *)
  sizes : int list;  (** the paper's size sweep *)
  test_size : int;  (** small size for full-grid correctness runs *)
  bench_size : int;
  tolerance : float;  (** relative tolerance for output comparison *)
  in_cublas : bool;  (** has a CUBLAS counterpart (paper Figure 13) *)
}

(** Deterministic pseudo-random inputs in [-1, 1): reproducible and mild
    enough that float32-vs-float64 drift stays below the tolerances. *)
let gen ~(seed : int) (n : int) : float array =
  Array.init n (fun i ->
      let h = (i * 2654435761) + (seed * 40503) in
      let h = h lxor (h lsr 13) in
      float_of_int (((h land 0xffff) * 2) - 0x10000) /. 65536.0)

let parse (w : t) (n : int) : Ast.kernel =
  let k = Parser.kernel_of_string (w.source n) in
  Typecheck.check k;
  k

(** Lines of code of the naive kernel, for Table 1. *)
let naive_loc (w : t) : int =
  let src = w.source w.test_size in
  (* count the kernel body and signature, not the pragma header *)
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let l = String.trim l in
         l <> "" && not (String.length l > 7 && String.sub l 0 7 = "#pragma"))
  |> List.length

exception Check_failed of string

(** Upload inputs, run the kernel, return the simulator result and the
    output arrays. Under a [block_budget] only a prefix of the grid is
    simulated: the result still estimates whole-grid performance, but
    the outputs are partial — never reference-check them. *)
let execute ?(mode = Gpcc_sim.Launch.Full) ?streams ?block_budget
    (cfg : Gpcc_sim.Config.t) (w : t) (n : int) (k : Ast.kernel)
    (launch : Ast.launch) :
    Gpcc_sim.Launch.result * (string -> float array) =
  let mem = Gpcc_sim.Devmem.of_kernel k in
  List.iter
    (fun (name, data) -> Gpcc_sim.Devmem.write mem name data)
    (w.inputs n);
  let r = Gpcc_sim.Launch.run ~mode ?streams ?block_budget cfg k launch mem in
  (r, fun name -> Gpcc_sim.Devmem.read mem name)

(** Full-grid run checked against the CPU reference. *)
let check (cfg : Gpcc_sim.Config.t) (w : t) (n : int) (k : Ast.kernel)
    (launch : Ast.launch) : unit =
  let _, read = execute ~mode:Gpcc_sim.Launch.Full cfg w n k launch in
  let inputs = w.inputs n in
  let input name = List.assoc name inputs in
  let expected = w.reference n input in
  List.iter
    (fun (name, want) ->
      let got = read name in
      if Array.length got <> Array.length want then
        raise
          (Check_failed
             (Printf.sprintf "%s/%s: output %s has %d elements, expected %d"
                w.name (string_of_int n) name (Array.length got)
                (Array.length want)));
      Array.iteri
        (fun i want_i ->
          let got_i = got.(i) in
          let scale = Float.max 1.0 (Float.abs want_i) in
          if Float.abs (got_i -. want_i) > w.tolerance *. scale then
            raise
              (Check_failed
                 (Printf.sprintf
                    "%s (n=%d): output %s[%d] = %.6f, expected %.6f" w.name n
                    name i got_i want_i)))
        want)
    expected

(** Simulated performance of a kernel on this workload (sampled blocks). *)
let measure ?(sample = 4) ?streams ?block_budget (cfg : Gpcc_sim.Config.t)
    (w : t) (n : int) (k : Ast.kernel) (launch : Ast.launch) :
    Gpcc_sim.Timing.result =
  let r, _ =
    execute
      ~mode:(Gpcc_sim.Launch.Sampled sample)
      ?streams ?block_budget cfg w n k launch
  in
  r.timing

(* The Explore sweep helpers below are applied to tens of kernel
   versions of the SAME (workload, size): generating the (identical,
   deterministic) input arrays on every call would dominate the sweep
   for large sizes, so each returned closure generates them once at
   construction and re-uploads. The arrays are only read (Devmem.write
   copies into device memory), so sharing them across pool domains is
   safe. *)
let upload_run ?mode ?streams ?block_budget cfg inputs (k : Ast.kernel)
    (launch : Ast.launch) : Gpcc_sim.Launch.result =
  let mem = Gpcc_sim.Devmem.of_kernel k in
  List.iter (fun (name, data) -> Gpcc_sim.Devmem.write mem name data) inputs;
  Gpcc_sim.Launch.run ?mode ?streams ?block_budget cfg k launch mem

(** GFLOPS measurement function for {!Gpcc_core.Explore}. *)
let measure_gflops ?(sample = 4) ?streams (cfg : Gpcc_sim.Config.t) (w : t)
    (n : int) : Ast.kernel -> Ast.launch -> float =
  let inputs = w.inputs n in
  fun k launch ->
    (upload_run ~mode:(Gpcc_sim.Launch.Sampled sample) ?streams cfg inputs k
       launch)
      .timing
      .gflops

(** Measurement function for {!Gpcc_core.Explore.search_funnel}: without
    [blocks] it is exactly {!measure_gflops}; with [blocks] the same run
    under a partial-simulation block budget (early abort after that many
    blocks, whole-grid estimate scaled from the prefix). *)
let measure_gflops_blocks ?(sample = 4) ?streams (cfg : Gpcc_sim.Config.t)
    (w : t) (n : int) : ?blocks:int -> Ast.kernel -> Ast.launch -> float =
  let inputs = w.inputs n in
  fun ?blocks k launch ->
    (upload_run
       ~mode:(Gpcc_sim.Launch.Sampled sample)
       ?streams ?block_budget:blocks cfg inputs k launch)
      .timing
      .gflops

(** Analytic prediction function for {!Gpcc_core.Explore.search_funnel}'s
    ranking stage: interpret one representative block
    ({!Gpcc_sim.Launch.run_block}) on real inputs and feed the occupancy
    and timing summary through {!Gpcc_analysis.Cost_model.predict}. *)
let predict_gflops (cfg : Gpcc_sim.Config.t) (w : t) (n : int) :
    Ast.kernel -> Ast.launch -> float =
  let inputs = w.inputs n in
  fun k launch ->
    let mem = Gpcc_sim.Devmem.of_kernel k in
    List.iter (fun (name, data) -> Gpcc_sim.Devmem.write mem name data) inputs;
    let r = Gpcc_sim.Launch.run_block cfg k launch mem in
    let t = r.timing in
    let occ = t.occupancy in
    let probe =
      {
        Gpcc_analysis.Cost_model.p_gflops = t.gflops;
        p_bound = t.bound;
        p_active_warps = occ.active_warps;
        p_blocks_per_sm = occ.blocks_per_sm;
        p_reg_spill = occ.reg_spill;
        p_waves = t.waves;
        p_total_blocks = Ast.total_blocks launch;
      }
    in
    (Gpcc_analysis.Cost_model.predict probe).score

(** Whether a block budget actually cuts this workload's simulation
    cost, i.e. whether {!Gpcc_core.Explore.search_funnel}'s halving
    stage can save anything: kernels with grid-wide sync phases are
    forced into [Full] mode, where [block_budget] aborts after a prefix
    of blocks; single-phase kernels run [Sampled], which interprets a
    handful of representative blocks no matter the budget. *)
let budget_sensitive (w : t) (n : int) : bool =
  List.length (Gpcc_sim.Launch.phases_of_body (parse w n).k_body) > 1

(** Effective bandwidth in GB/s based on the algorithmic byte count (the
    paper uses this metric for transpose, which has no flops). *)
let effective_bandwidth (w : t) (n : int) (t : Gpcc_sim.Timing.result) : float
    =
  w.moved_bytes n /. (t.time_ms /. 1e3) /. 1e9

(** Shared helpers for the test suites. *)

open Gpcc_ast

let cfg280 = Gpcc_sim.Config.gtx280
let cfg8800 = Gpcc_sim.Config.gtx8800

let parse_kernel src =
  let k = Parser.kernel_of_string src in
  Typecheck.check k;
  k

let expr = Parser.expr_of_string

(** Alcotest testable for expressions (structural equality). *)
let expr_t = Alcotest.testable (Fmt.of_to_string Pp.expr_to_string) Ast.equal_expr

let check_expr = Alcotest.check expr_t

(** Run a kernel over the full grid and read one output array. *)
let run_full ?(cfg = cfg280) (k : Ast.kernel) (launch : Ast.launch)
    (inputs : (string * float array) list) (out : string) :
    float array * Gpcc_sim.Launch.result =
  let mem = Gpcc_sim.Devmem.of_kernel k in
  List.iter (fun (n, d) -> Gpcc_sim.Devmem.write mem n d) inputs;
  let r = Gpcc_sim.Launch.run ~mode:Gpcc_sim.Launch.Full cfg k launch mem in
  (Gpcc_sim.Devmem.read mem out, r)

let floats_close ?(eps = 1e-4) a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Float.abs (x -. y) <= eps *. Float.max 1.0 (Float.abs y))
       a b

let check_floats ?eps msg want got =
  if not (floats_close ?eps got want) then begin
    let diffs = ref [] in
    Array.iteri
      (fun i w ->
        if
          i < Array.length got
          && Float.abs (got.(i) -. w) > 1e-4 *. Float.max 1.0 (Float.abs w)
        then diffs := i :: !diffs)
      want;
    Alcotest.failf "%s: %d mismatches (first at %s)" msg
      (List.length !diffs)
      (match List.rev !diffs with
      | i :: _ -> Printf.sprintf "[%d] got %f want %f" i got.(i) want.(i)
      | [] -> "length")
  end

(** Compile a naive kernel with the given knobs. [disable] names
    registry passes to leave out. *)
let compile ?(cfg = cfg280) ?(target = 128) ?(degree = 4) ?(disable = [])
    ?(verify = true) k =
  let pipeline =
    Gpcc_core.Pipeline.disable disable
      (Gpcc_core.Pipeline.default ~cfg ~target_block_threads:target
         ~merge_degree:degree ~verify ())
  in
  Gpcc_core.Pipeline.run ~pipeline k

(** Check one workload's optimized kernel against its CPU reference. *)
let check_workload ?(cfg = cfg280) ?target ?degree name n =
  let w = Gpcc_workloads.Registry.find_exn name in
  let k = Gpcc_workloads.Workload.parse w n in
  let r = compile ~cfg ?target ?degree k in
  Gpcc_workloads.Workload.check cfg w n r.kernel r.launch;
  r

(** Body of the step named [name] in a compile result. *)
let step_after (r : Gpcc_core.Pipeline.result) name =
  match
    List.find_opt
      (fun (s : Gpcc_core.Pipeline.step) -> String.equal s.step_name name)
      r.steps
  with
  | Some s -> s
  | None -> Alcotest.failf "no pipeline step named %s" name

let kernel_text (k : Ast.kernel) = Pp.kernel_to_string k

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let assert_contains msg hay needle =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: expected to find %S in:\n%s" msg needle hay

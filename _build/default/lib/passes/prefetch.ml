(** Data prefetching (paper Section 3.6, Figure 8).

    For each loop whose body begins with global-to-shared staging, the
    global load is double-buffered through a register: the value for the
    first iteration is loaded before the loop; inside the loop the staging
    stores the register to shared memory, and right after the
    [__syncthreads()] the next iteration's value is fetched (bound-checked)
    so the load's latency overlaps the iteration's computation.

    The cost is one register per staged load. Following the paper ("when
    registers are used up before prefetching, the prefetching step is
    skipped"), the transformation is applied only when it does not lower
    the SM occupancy, and only when the staged address is an affine
    function of the loop variable (so "next iteration" is well-defined). *)

open Gpcc_ast
open Ast

(** A staging site inside a loop body: the statement position, optional
    guard, shared target, and the global-load right-hand side. *)
type site = {
  pos : int;
  guard : Ast.expr option;
  target : Ast.lvalue;
  load : Ast.expr;  (** the global Index/Vload expression *)
}

let is_global_load (globals : string list) = function
  | Index (a, _) when List.mem a globals -> true
  | Vload { v_arr; _ } when List.mem v_arr globals -> true
  | _ -> false

(** Variables assigned anywhere in a block (rotated-index locals etc.). *)
let assigned_vars (b : Ast.block) : string list =
  let acc = ref [] in
  ignore
    (Rewrite.map_stmts
       (function
         | Assign (Lvar v, _) as s ->
             acc := v :: !acc;
             [ s ]
         | Decl d as s ->
             acc := d.d_name :: !acc;
             [ s ]
         | s -> [ s ])
       b);
  !acc

let find_sites (globals : string list) (shared : string list)
    (body : Ast.block) : site list =
  List.concat
    (List.mapi
       (fun pos s ->
         match s with
         | Assign ((Lindex (sh, _) as lv), rhs)
           when List.mem sh shared && is_global_load globals rhs ->
             [ { pos; guard = None; target = lv; load = rhs } ]
         | If (g, stagings, []) ->
             List.filter_map
               (function
                 | Assign ((Lindex (sh, _) as lv), rhs)
                   when List.mem sh shared && is_global_load globals rhs ->
                     Some { pos; guard = Some g; target = lv; load = rhs }
                 | _ -> None)
               stagings
         | _ -> [])
       body)

(** Position of the first [__syncthreads] after the staging group. *)
let sync_pos (body : Ast.block) (after : int) : int option =
  let rec go i = function
    | [] -> None
    | Sync :: _ when i > after -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 body

let guard_stmt (guard : Ast.expr option) (s : Ast.stmt) =
  match guard with None -> s | Some g -> If (g, [ s ], [])

let and_guard (guard : Ast.expr option) (cond : Ast.expr) =
  match guard with None -> cond | Some g -> Binop (And, g, cond)

(** Rewrite one loop: returns [None] when the loop has no prefetchable
    staging. *)
let prefetch_loop (globals : string list) (shared : string list)
    (fresh : string -> string) (l : Ast.loop) : (Ast.stmt list * int) option =
  let sites = find_sites globals shared l.l_body in
  (* the load must move with the loop variable, and must not depend on
     any value computed inside the body (e.g. a rotated index) *)
  let inner = assigned_vars l.l_body in
  let sites =
    List.filter
      (fun s ->
        Rewrite.expr_uses_var l.l_var s.load
        && not (List.exists (fun v -> Rewrite.expr_uses_var v s.load) inner))
      sites
  in
  if sites = [] then None
  else
    match sync_pos l.l_body (List.fold_left (fun m s -> max m s.pos) 0 sites) with
    | None -> None
    | Some sp ->
        let tmps = List.map (fun s -> (fresh "pref", s)) sites in
        let next e =
          Pass_util.simplify_expr
            ([ Assign (Lvar "_", e) ]
            |> Rewrite.subst_var l.l_var (Ast.( +: ) (Var l.l_var) l.l_step)
            |> function
            | [ Assign (_, e') ] -> e'
            | _ -> e)
        in
        let at_init e =
          Pass_util.simplify_expr
            ([ Assign (Lvar "_", e) ]
            |> Rewrite.subst_var l.l_var l.l_init
            |> function
            | [ Assign (_, e') ] -> e'
            | _ -> e)
        in
        (* declarations + first-iteration loads before the loop *)
        let pre =
          List.concat_map
            (fun (tmp, s) ->
              let ty =
                match s.load with
                | Vload { v_width = 2; _ } -> Scalar Float2
                | Vload _ -> Scalar Float4
                | _ -> Scalar Float
              in
              [
                Decl { d_name = tmp; d_ty = ty; d_init = None };
                guard_stmt s.guard (Assign (Lvar tmp, at_init s.load));
              ])
            tmps
        in
        (* inside the loop: staging uses the register; after the sync the
           next value is fetched under a bound check *)
        let bound_check =
          Ast.( <: ) (Ast.( +: ) (Var l.l_var) l.l_step) l.l_limit
        in
        let body =
          List.concat
            (List.mapi
               (fun i st ->
                 let replaced =
                   List.fold_left
                     (fun st (tmp, s) ->
                       match st with
                       | Assign (lv, rhs) when Ast.equal_lvalue lv s.target ->
                           Assign
                             ( lv,
                               Pass_util.replace_expr_in s.load (Var tmp) rhs )
                       | If (g, stagings, []) ->
                           If
                             ( g,
                               List.map
                                 (function
                                   | Assign (lv, rhs)
                                     when Ast.equal_lvalue lv s.target ->
                                       Assign
                                         ( lv,
                                           Pass_util.replace_expr_in s.load
                                             (Var tmp) rhs )
                                   | st -> st)
                                 stagings,
                               [] )
                       | st -> st)
                     st tmps
                 in
                 let prefetches =
                   if i = sp then
                     List.map
                       (fun (tmp, s) ->
                         If
                           ( and_guard s.guard bound_check,
                             [ Assign (Lvar tmp, next s.load) ],
                             [] ))
                       tmps
                   else []
                 in
                 (replaced :: prefetches))
               l.l_body)
        in
        Some (pre @ [ For { l with l_body = body } ], List.length tmps)

(** Number of 32-bit registers the prefetch temporaries would add. *)
let extra_regs (tmps : int) = tmps

let apply ?(cfg = Gpcc_sim.Config.gtx280) (k : Ast.kernel)
    (launch : Ast.launch) : Pass_util.outcome =
  let globals = Pass_util.global_arrays k in
  let shared = Pass_util.shared_arrays k.k_body in
  let used = ref (Pass_util.used_names k) in
  let fresh base =
    let nm = Rewrite.fresh_name !used base in
    used := nm :: !used;
    nm
  in
  let added = ref 0 in
  let body =
    Rewrite.map_stmts
      (function
        | For l when !added = 0 -> (
            match prefetch_loop globals shared fresh l with
            | Some (stmts, n) ->
                added := n;
                stmts
            | None -> [ For l ])
        | s -> [ s ])
      k.k_body
  in
  if !added = 0 then
    Pass_util.unchanged ~notes:[ "no prefetchable staging loop found" ] k
      launch
  else begin
    (* occupancy check: skip if the temporaries would reduce resident
       blocks (the paper's "registers are used up" rule) *)
    let regs = Gpcc_analysis.Regcount.estimate k in
    let shmem = Gpcc_analysis.Regcount.shared_bytes k in
    let tpb = Ast.threads_per_block launch in
    let occ_before =
      Gpcc_sim.Occupancy.calc cfg ~regs_per_thread:regs ~shared_per_block:shmem
        ~threads_per_block:tpb
    in
    let occ_after =
      Gpcc_sim.Occupancy.calc cfg
        ~regs_per_thread:(regs + extra_regs !added)
        ~shared_per_block:shmem ~threads_per_block:tpb
    in
    if occ_after.blocks_per_sm < occ_before.blocks_per_sm then
      Pass_util.unchanged
        ~notes:
          [
            Printf.sprintf
              "prefetching skipped: %d extra register(s) would reduce \
               occupancy from %d to %d blocks/SM"
              !added occ_before.blocks_per_sm occ_after.blocks_per_sm;
          ]
        k launch
    else
      Pass_util.changed
        ~notes:
          [
            Printf.sprintf
              "double-buffered %d global-to-shared load(s) through prefetch \
               register(s)"
              !added;
          ]
        { k with k_body = body }
        launch
  end

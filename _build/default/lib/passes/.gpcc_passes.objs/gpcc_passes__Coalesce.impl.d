lib/passes/coalesce.pp.ml: Affine Ast Coalesce_check Gpcc_analysis Gpcc_ast Layout List Option Pass_util Pp Printf Rewrite String

  $ gpcc list | awk '{print $1}'
  $ cat > mm.cu <<'SRC'
  > #pragma gpcc dim w 64
  > #pragma gpcc output c
  > __kernel void mm(float a[64][64], float b[64][64], float c[64][64], int w) {
  >   float sum = 0;
  >   for (int i = 0; i < w; i++)
  >     sum += a[idy][i] * b[i][idx];
  >   c[idy][idx] = sum;
  > }
  > SRC
  $ gpcc check mm.cu
  $ gpcc compile -t 64 -m 4 mm.cu | grep -c 'sum_3\|if (tidx < 16)\|__shared__'
  $ cat > bad.cu <<'SRC'
  > __kernel void f(float o[16]) {
  >   o[idx] = nope;
  > }
  > SRC
  $ gpcc compile bad.cu

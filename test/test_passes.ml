(** Tests for the optimization passes: vectorization, the four coalescing
    rules, thread-block/thread merge, prefetching, invariant hoisting, and
    partition-camping elimination. Every structural check is paired with a
    semantic-preservation run on the simulator. *)

open Gpcc_ast
open Gpcc_passes
open Util

(** Apply [passes] in order to a naive kernel and verify the result
    computes the same outputs as the naive version over the full grid. *)
let preserved ?(inputs = []) ~out src passes =
  let k = parse_kernel src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let want, _ = run_full k launch inputs out in
  let k', launch' =
    List.fold_left
      (fun (k, l) pass ->
        let (o : Pass_util.outcome) = pass k l in
        (o.kernel, o.launch))
      (k, launch) passes
  in
  Typecheck.check k';
  let got, _ = run_full k' launch' inputs out in
  check_floats "semantics preserved" want got;
  (k', launch')

let gen = Gpcc_workloads.Workload.gen

(* --- vectorization --- *)

let test_vectorize_pairs () =
  let src =
    {|#pragma gpcc output o
__kernel void f(float a[64], float o[32]) {
  o[idx] = a[2 * idx] + a[2 * idx + 1];
}|}
  in
  let k = parse_kernel src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o = Vectorize.apply k launch in
  Alcotest.(check bool) "fired" true o.fired;
  let txt = kernel_text o.kernel in
  assert_contains "float2 declared" txt "float2";
  assert_contains "vector load" txt "((float2*)a)[idx]";
  assert_contains "x component" txt ".x";
  ignore
    (preserved ~inputs:[ ("a", gen ~seed:1 64) ] ~out:"o" src
       [ Vectorize.apply ])

let test_vectorize_across_statements () =
  (* the rd-complex pattern: the pair sits in two adjacent statements *)
  let src =
    {|#pragma gpcc dim n 32
#pragma gpcc output o
__kernel void f(float a[64], float o[32], int n) {
  float s = 0;
  for (int i = idx; i < n; i += 32) {
    s += a[2 * i];
    s += a[2 * i + 1];
  }
  o[idx] = s;
}|}
  in
  let k = parse_kernel src in
  let launch = { Ast.grid_x = 2; grid_y = 1; block_x = 16; block_y = 1 } in
  let o = Vectorize.apply k launch in
  Alcotest.(check bool) "fired" true o.fired;
  assert_contains "one vector load" (kernel_text o.kernel) "((float2*)a)[i]"

let test_vectorize_requires_even_base () =
  let src =
    {|#pragma gpcc output o
__kernel void f(float a[64], float o[32]) {
  o[idx] = a[2 * idx + 1] + a[2 * idx + 2];
}|}
  in
  let k = parse_kernel src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o = Vectorize.apply k launch in
  Alcotest.(check bool) "odd/even pair not vectorized" false o.fired

let test_vectorize_distinct_arrays () =
  let src =
    {|#pragma gpcc output o
__kernel void f(float a[64], float b[64], float o[32]) {
  o[idx] = a[2 * idx] + b[2 * idx + 1];
}|}
  in
  let k = parse_kernel src in
  let o = Vectorize.apply k (Option.get (Pass_util.initial_launch k)) in
  Alcotest.(check bool) "different arrays never pair" false o.fired

(* --- coalescing rules --- *)

let mm_src = (Gpcc_workloads.Registry.find_exn "mm").source 64
let mv_src = (Gpcc_workloads.Registry.find_exn "mv").source 64
let tp_src = (Gpcc_workloads.Registry.find_exn "tp").source 64

let test_coalesce_loop_stage () =
  let k, _ =
    preserved
      ~inputs:[ ("a", gen ~seed:1 4096); ("b", gen ~seed:2 4096) ]
      ~out:"c" mm_src [ Coalesce.apply ]
  in
  let txt = kernel_text k in
  (* paper Figure 3a structure *)
  assert_contains "staged through shared" txt "__shared__ float shared[16]";
  assert_contains "cooperative load" txt "shared[tidx] = a[idy][i + tidx]";
  assert_contains "unrolled inner loop" txt "for (int k = 0; k < 16; k++)";
  assert_contains "replaced access" txt "shared[k]";
  assert_contains "sync" txt "__syncthreads()"

let test_coalesce_rowloop_stage () =
  let k, _ =
    preserved
      ~inputs:[ ("a", gen ~seed:3 4096); ("b", gen ~seed:4 64) ]
      ~out:"c" mv_src [ Coalesce.apply ]
  in
  let txt = kernel_text k in
  (* paper Figure 3b structure *)
  assert_contains "padded tile" txt "[16][17]";
  assert_contains "row loop" txt "for (int l = 0; l < 16; l++)";
  assert_contains "row base" txt "a[idx - tidx + l][i + tidx]";
  assert_contains "tile read" txt "[tidx][k]"

let test_coalesce_exchange_store () =
  let k = parse_kernel tp_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o = Coalesce.apply k launch in
  Alcotest.(check int) "block grows to 16x16" 16 o.launch.block_y;
  Alcotest.(check int) "grid shrinks" (launch.grid_y / 16) o.launch.grid_y;
  let txt = kernel_text o.kernel in
  assert_contains "tile" txt "__shared__ float tile[16][17]";
  assert_contains "swap" txt "tile[tidx][tidy]";
  (* semantics *)
  let want, _ = run_full k launch [ ("a", gen ~seed:5 4096) ] "b" in
  let got, _ = run_full o.kernel o.launch [ ("a", gen ~seed:5 4096) ] "b" in
  check_floats "transpose preserved" want got

let test_coalesce_apron_stage () =
  let w = Gpcc_workloads.Registry.find_exn "imregionmax" in
  let src = w.source 64 in
  let k, _ =
    preserved
      ~inputs:(w.inputs 64)
      ~out:"out" src [ Coalesce.apply ]
  in
  let txt = kernel_text k in
  assert_contains "apron buffer" txt "__shared__ float apron";
  assert_contains "cooperative stride-16 loop" txt "t += 16"

let test_coalesce_skips_no_reuse () =
  (* misaligned single access with no neighbors: the paper's reuse rule
     says don't convert *)
  let src =
    {|#pragma gpcc output o
__kernel void f(float a[80], float o[64]) {
  o[idx] = a[idx + 1];
}|}
  in
  let k = parse_kernel src in
  let o = Coalesce.apply k (Option.get (Pass_util.initial_launch k)) in
  Alcotest.(check bool) "no staging introduced" true
    (Pass_util.shared_arrays o.kernel.k_body = []);
  Alcotest.(check bool) "explained" true
    (List.exists (contains ~needle:"no reuse") o.notes)

let test_coalesce_skips_divergent () =
  let src =
    {|#pragma gpcc dim w 64
#pragma gpcc output o
__kernel void f(float a[64][64], float o[64], int w) {
  float s = 0;
  if (idx == 0) {
    for (int j = 0; j < w; j++)
      s += a[0][j];
  }
  o[idx] = s;
}|}
  in
  let k = parse_kernel src in
  let o = Coalesce.apply k (Option.get (Pass_util.initial_launch k)) in
  Alcotest.(check bool) "no staging under divergent guard" true
    (Pass_util.shared_arrays o.kernel.k_body = [])

let test_coalesce_strided_destage () =
  let w = Gpcc_workloads.Registry.find_exn "rd-complex" in
  let src = w.source 4096 in
  let k = parse_kernel src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o = Coalesce.apply k launch in
  Alcotest.(check bool) "fired" true o.fired;
  let txt = kernel_text o.kernel in
  assert_contains "32-wide buffer" txt "__shared__ float shared[32]";
  assert_contains "destaged read" txt "shared[2 * tidx"

(* --- merges --- *)

let test_block_merge_guards () =
  let k = parse_kernel mm_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Merge.block_merge_x o1.kernel o1.launch 4 in
  Alcotest.(check bool) "fired" true o2.fired;
  Alcotest.(check int) "block widened" 64 o2.launch.block_x;
  Alcotest.(check int) "grid shrunk" (o1.launch.grid_x / 4) o2.launch.grid_x;
  assert_contains "redundant loads guarded" (kernel_text o2.kernel)
    "if (tidx < 16)"

let test_block_merge_privatizes () =
  let k = parse_kernel mv_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Merge.block_merge_x o1.kernel o1.launch 4 in
  Alcotest.(check bool) "fired" true o2.fired;
  let txt = kernel_text o2.kernel in
  assert_contains "per-sub-block tile" txt "[4][16][17]";
  assert_contains "sub-block index" txt "tidx / 16";
  assert_contains "lane within sub-block" txt "tidx % 16"

let test_block_merge_indivisible () =
  let k = parse_kernel mm_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o = Merge.block_merge_x k launch 3 in
  Alcotest.(check bool) "grid 4 not divisible by 3" false o.fired

let test_thread_merge_y_structure () =
  let k = parse_kernel mm_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Merge.thread_merge Merge.Y o1.kernel o1.launch 4 in
  Alcotest.(check bool) "fired" true o2.fired;
  Alcotest.(check int) "grid.y shrunk" (o1.launch.grid_y / 4) o2.launch.grid_y;
  let txt = kernel_text o2.kernel in
  (* paper Figure 7 structure *)
  assert_contains "replicated accumulators" txt "sum_3";
  assert_contains "replicated staging row" txt "a[idy * 4 + 3][i + tidx]";
  assert_contains "hoisted register load" txt "float r = b[i + k][idx]";
  assert_contains "register reuse across replicas" txt "sum_3 += shared_3[k] * r"

let test_thread_merge_semantics () =
  ignore
    (preserved
       ~inputs:[ ("a", gen ~seed:1 4096); ("b", gen ~seed:2 4096) ]
       ~out:"c" mm_src
       [
         Coalesce.apply;
         (fun k l -> Merge.block_merge_x k l 2);
         (fun k l -> Merge.thread_merge Merge.Y k l 8);
       ])

let test_thread_merge_x_semantics () =
  ignore
    (preserved
       ~inputs:[ ("a", gen ~seed:3 4096); ("b", gen ~seed:4 64) ]
       ~out:"c" mv_src
       [ Coalesce.apply; (fun k l -> Merge.thread_merge Merge.X k l 4) ])

let test_thread_merge_keeps_control_flow_single () =
  let k = parse_kernel mm_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Merge.thread_merge Merge.Y o1.kernel o1.launch 4 in
  (* exactly one i-loop and one k-loop survive *)
  let count_loops b =
    let n = ref 0 in
    ignore
      (Gpcc_ast.Rewrite.map_stmts
         (function
           | Ast.For _ as s ->
               incr n;
               [ s ]
           | s -> [ s ])
         b)
    |> ignore;
    !n
  in
  Alcotest.(check int) "loops not replicated" 2 (count_loops o2.kernel.k_body)

(* --- prefetch --- *)

let test_prefetch_structure () =
  let k = parse_kernel mm_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Prefetch.apply o1.kernel o1.launch in
  Alcotest.(check bool) "fired" true o2.fired;
  let txt = kernel_text o2.kernel in
  (* paper Figure 8 structure *)
  assert_contains "register declared" txt "float pref";
  assert_contains "first fetch before loop" txt "pref = a[idy][tidx]";
  assert_contains "bound check" txt "if (i + 16 < w)";
  assert_contains "next fetch" txt "pref = a[idy][i + 16 + tidx]";
  assert_contains "staging from register" txt "shared[tidx] = pref"

let test_prefetch_semantics () =
  ignore
    (preserved
       ~inputs:[ ("a", gen ~seed:1 4096); ("b", gen ~seed:2 4096) ]
       ~out:"c" mm_src [ Coalesce.apply; Prefetch.apply ])

let test_prefetch_skips_on_pressure () =
  (* a kernel already at the register limit: prefetch must decline *)
  let k = parse_kernel mm_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Merge.block_merge_x o1.kernel o1.launch 16 in
  let o3 = Merge.thread_merge Merge.Y o2.kernel o2.launch 32 in
  let o4 = Prefetch.apply ~cfg:cfg8800 o3.kernel o3.launch in
  Alcotest.(check bool) "skipped when occupancy would drop" false o4.fired;
  Alcotest.(check bool) "explains itself" true
    (List.exists (contains ~needle:"occupancy") o4.notes)

(* --- invariant hoisting --- *)

let test_licm_hoists_nested () =
  let src =
    {|#pragma gpcc dim w 64
#pragma gpcc output o
__kernel void f(float a[64][64], float o[64][64], int w) {
  float s = 0;
  for (int i = 0; i < w; i += 16) {
    for (int k = 0; k < 16; k++) {
      if (i + k < idy * 16 + 3) {
        s += a[idy][i + k];
      }
    }
  }
  o[idy][idx] = s;
}|}
  in
  let k = parse_kernel src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o = Licm.apply k launch in
  Alcotest.(check bool) "fired" true o.fired;
  assert_contains "hoisted binding" (kernel_text o.kernel) "int inv = idy * 16 + 3";
  ignore
    (preserved ~inputs:[ ("a", gen ~seed:9 4096) ] ~out:"o" src [ Licm.apply ])

let test_licm_leaves_top_level () =
  let k = parse_kernel mm_src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o = Licm.apply k launch in
  Alcotest.(check bool) "nothing to hoist in naive mm" false o.fired

(* --- partition camping --- *)

let test_camping_detection () =
  let w = Gpcc_workloads.Registry.find_exn "mv" in
  let k = Gpcc_workloads.Workload.parse w 512 in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let ds = Partition_camp.detect cfg280 o1.kernel o1.launch in
  Alcotest.(check bool) "mv camps" true (ds <> []);
  Alcotest.(check string) "on array a" "a" (List.hd ds).Partition_camp.d_arr

let test_camping_offset_insertion () =
  let w = Gpcc_workloads.Registry.find_exn "mv" in
  let n = 512 in
  let k = Gpcc_workloads.Workload.parse w n in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Partition_camp.apply ~cfg:cfg280 o1.kernel o1.launch in
  Alcotest.(check bool) "fired" true o2.fired;
  assert_contains "rotated index" (kernel_text o2.kernel) "64 * bidx";
  (* rotation preserves the reduction *)
  let inputs = w.inputs n in
  let want, _ = run_full k launch inputs "c" in
  let got, _ = run_full o2.kernel o2.launch inputs "c" in
  check_floats ~eps:1e-3 "rotation preserves sums" want got

let test_camping_diagonal_remap () =
  let w = Gpcc_workloads.Registry.find_exn "tp" in
  let n = 512 in
  let k = Gpcc_workloads.Workload.parse w n in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Partition_camp.apply ~cfg:cfg280 o1.kernel o1.launch in
  Alcotest.(check bool) "fired" true o2.fired;
  let txt = kernel_text o2.kernel in
  assert_contains "diagonal x" txt "(bidx + bidy) % gdimx";
  assert_contains "diagonal y" txt "bidy_d = bidx";
  let inputs = w.inputs n in
  let want, _ = run_full k launch inputs "b" in
  let got, _ = run_full o2.kernel o2.launch inputs "b" in
  check_floats "remap preserves transpose" want got

let test_camping_none_when_spread () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let k = Gpcc_workloads.Workload.parse w 512 in
  let launch = Option.get (Pass_util.initial_launch k) in
  let ds = Partition_camp.detect cfg280 k launch in
  Alcotest.(check bool) "mm does not camp" true (ds = [])

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "passes",
    [
      t "vectorize: pairs in one stmt" test_vectorize_pairs;
      t "vectorize: across statements" test_vectorize_across_statements;
      t "vectorize: odd base rejected" test_vectorize_requires_even_base;
      t "vectorize: distinct arrays" test_vectorize_distinct_arrays;
      t "coalesce: loop staging (Fig 3a)" test_coalesce_loop_stage;
      t "coalesce: row-loop staging (Fig 3b)" test_coalesce_rowloop_stage;
      t "coalesce: exchange store (tp)" test_coalesce_exchange_store;
      t "coalesce: apron staging" test_coalesce_apron_stage;
      t "coalesce: reuse rule" test_coalesce_skips_no_reuse;
      t "coalesce: divergent guard" test_coalesce_skips_divergent;
      t "coalesce: strided destage" test_coalesce_strided_destage;
      t "block merge: guards (Fig 5)" test_block_merge_guards;
      t "block merge: privatization" test_block_merge_privatizes;
      t "block merge: divisibility" test_block_merge_indivisible;
      t "thread merge: structure (Fig 7)" test_thread_merge_y_structure;
      t "thread merge: semantics" test_thread_merge_semantics;
      t "thread merge X: semantics" test_thread_merge_x_semantics;
      t "thread merge: single control flow" test_thread_merge_keeps_control_flow_single;
      t "prefetch: structure (Fig 8)" test_prefetch_structure;
      t "prefetch: semantics" test_prefetch_semantics;
      t "prefetch: register pressure" test_prefetch_skips_on_pressure;
      t "licm: hoists nested invariants" test_licm_hoists_nested;
      t "licm: leaves top level" test_licm_leaves_top_level;
      t "camping: detection" test_camping_detection;
      t "camping: offset insertion" test_camping_offset_insertion;
      t "camping: diagonal remap" test_camping_diagonal_remap;
      t "camping: no false positive" test_camping_none_when_spread;
    ] )

(* appended: regression for the vectorizer staleness bug found by fft —
   a pair must not be reused across a barrier after the array is
   rewritten *)
let test_vectorize_respects_barriers () =
  let src =
    {|#pragma gpcc output o
__kernel void f(float a[32], float o[16]) {
  float x = a[2 * idx] + a[2 * idx + 1];
  a[2 * idx] = 0.0 - a[2 * idx];
  __global_sync();
  float y = a[2 * idx] + a[2 * idx + 1];
  o[idx] = x + y;
}|}
  in
  let k = parse_kernel src in
  let launch = Option.get (Pass_util.initial_launch k) in
  let inputs = [ ("a", gen ~seed:30 32) ] in
  let want, _ = run_full k launch inputs "o" in
  let o = Vectorize.apply k launch in
  Alcotest.(check bool) "fired" true o.fired;
  let got, _ = run_full o.kernel o.launch inputs "o" in
  check_floats "stale pair not reused across the store/barrier" want got

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "vectorize: barrier staleness" `Quick
          test_vectorize_respects_barriers;
      ] )

(* appended: regression — a staging whose bidx-dependence flows through a
   loop variable (for i = idx; ...) must not be *guarded* by block merge:
   it is privatized per sub-block instead, and the un-vectorized complex
   reduction must stay correct end-to-end *)
let test_block_merge_loop_carried_bidx () =
  let w = Gpcc_workloads.Registry.find_exn "rd-complex" in
  let n = 8192 in
  let k = Gpcc_workloads.Workload.parse w n in
  let launch = Option.get (Pass_util.initial_launch k) in
  let o1 = Coalesce.apply k launch in
  let o2 = Merge.block_merge_x o1.kernel o1.launch 8 in
  Alcotest.(check bool) "merged via privatization" true o2.fired;
  let txt = kernel_text o2.kernel in
  assert_contains "sub-block index" txt "tidx / 16";
  assert_contains "lane within sub-block" txt "tidx % 16";
  Alcotest.(check bool) "never guarded with (tidx < 16)" false
    (contains ~needle:"if (tidx < 16)" txt)

let test_rd_complex_without_vectorization () =
  let w = Gpcc_workloads.Registry.find_exn "rd-complex" in
  let n = 16384 in
  let k = Gpcc_workloads.Workload.parse w n in
  let r =
    compile ~cfg:cfg280 ~target:128 ~degree:4
      ~disable:[ "vectorize-wide"; "vectorize" ] k
  in
  Gpcc_workloads.Workload.check cfg280 w n r.kernel r.launch

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "block merge: loop-carried bidx" `Quick
          test_block_merge_loop_carried_bidx;
        Alcotest.test_case "rd-complex without vectorization" `Slow
          test_rd_complex_without_vectorization;
      ] )

(* appended: AMD-style wide vectorization (paper Section 3.1's aggressive
   rule) *)
let test_wide_vectorize_applicability () =
  let vv = parse_kernel ((Gpcc_workloads.Registry.find_exn "vv").source 1024) in
  let mm = parse_kernel ((Gpcc_workloads.Registry.find_exn "mm").source 64) in
  let lvv = Option.get (Pass_util.initial_launch vv) in
  let lmm = Option.get (Pass_util.initial_launch mm) in
  Alcotest.(check bool) "vv is element-wise" true
    (Vectorize_wide.apply ~width:2 vv lvv).fired;
  Alcotest.(check bool) "mm is not" false
    (Vectorize_wide.apply ~width:2 mm lmm).fired

let test_wide_vectorize_correct () =
  let w = Gpcc_workloads.Registry.find_exn "vv" in
  let n = 1024 in
  let k = Gpcc_workloads.Workload.parse w n in
  List.iter
    (fun width ->
      let launch = Option.get (Pass_util.initial_launch k) in
      let o = Vectorize_wide.apply ~width k launch in
      Alcotest.(check bool) "fired" true o.fired;
      Alcotest.(check int) "grid shrinks" (launch.grid_x / width)
        o.launch.grid_x;
      assert_contains "vector store" (kernel_text o.kernel)
        (Printf.sprintf "((float%d*)c)[idx]" width);
      Gpcc_workloads.Workload.check cfg280 w n o.kernel o.launch)
    [ 2; 4 ]

let test_hd5870_pipeline () =
  let amd = Gpcc_sim.Config.hd5870 in
  let w = Gpcc_workloads.Registry.find_exn "vv" in
  let n = 1024 in
  let k = Gpcc_workloads.Workload.parse w n in
  let r = compile ~cfg:amd k in
  Gpcc_workloads.Workload.check amd w n r.kernel r.launch;
  Alcotest.(check bool) "wide step fired" true
    (List.exists
       (fun (s : Gpcc_core.Pipeline.step) ->
         s.fired && s.step_name = "wide vectorization (AMD)")
       r.steps);
  (* a non-element-wise kernel still compiles correctly on the AMD target *)
  let wm = Gpcc_workloads.Registry.find_exn "mm" in
  let km = Gpcc_workloads.Workload.parse wm 64 in
  let rm = compile ~cfg:amd km in
  Gpcc_workloads.Workload.check amd wm 64 rm.kernel rm.launch

let test_width_efficiency_ordering () =
  (* paper Section 2a: on the HD 5870 wider accesses sustain more
     bandwidth; the machine model must reproduce the ordering *)
  let amd = Gpcc_sim.Config.hd5870 in
  let w = Gpcc_workloads.Registry.find_exn "vv" in
  let n = 65536 in
  let time width =
    let k = Gpcc_workloads.Workload.parse w n in
    let launch = Option.get (Pass_util.initial_launch k) in
    let o =
      if width = 1 then Pass_util.unchanged k launch
      else Vectorize_wide.apply ~width k launch
    in
    let bm = Merge.block_merge_x o.kernel o.launch 16 in
    (Gpcc_workloads.Workload.measure ~sample:2 amd w n bm.kernel bm.launch)
      .time_ms
  in
  let t1 = time 1 and t2 = time 2 and t4 = time 4 in
  Alcotest.(check bool)
    (Printf.sprintf "float4 fastest (%.3f / %.3f / %.3f ms)" t1 t2 t4)
    true
    (t4 <= t2 && t4 < t1)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "wide vectorize: applicability" `Quick
          test_wide_vectorize_applicability;
        Alcotest.test_case "wide vectorize: correctness" `Quick
          test_wide_vectorize_correct;
        Alcotest.test_case "HD5870 pipeline" `Quick test_hd5870_pipeline;
        Alcotest.test_case "width bandwidth ordering" `Slow
          test_width_efficiency_ordering;
      ] )

(** End-to-end compiler tests: the full pipeline on every Table-1
    workload checked against CPU references, the staged (Figure 12)
    prefixes, the design-space exploration, and the launch-configuration
    arithmetic. *)

open Util

let configs = [ (128, 4); (256, 8); (256, 16) ]

let test_all_workloads_all_configs () =
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      List.iter
        (fun (target, degree) ->
          (* use a size large enough for the block merge to fire *)
          let n = if target > 128 then w.test_size * 2 else w.test_size in
          match check_workload ~target ~degree w.name n with
          | _ -> ()
          | exception Gpcc_workloads.Workload.Check_failed m ->
              Alcotest.failf "%s (t=%d d=%d): %s" w.name target degree m
          | exception e ->
              Alcotest.failf "%s (t=%d d=%d): %s" w.name target degree
                (Printexc.to_string e))
        configs)
    (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras)

let test_both_gpus () =
  List.iter
    (fun cfg ->
      List.iter
        (fun name -> ignore (check_workload ~cfg name 64))
        [ "mm"; "mv"; "tp" ])
    [ cfg280; cfg8800 ]

let test_report_readable () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let k = Gpcc_workloads.Workload.parse w 128 in
  let r = compile ~target:128 ~degree:8 k in
  let report = Gpcc_core.Compiler.report r in
  assert_contains "mentions coalescing" report "memory coalescing";
  assert_contains "mentions merge" report "merge";
  assert_contains "mentions launch" report "launch:"

let test_launch_covers_domain () =
  (* grid x block always covers exactly the thread domain, whatever the
     merge configuration *)
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      let n = w.test_size * 2 in
      let k = Gpcc_workloads.Workload.parse w n in
      let dom = Option.get (Gpcc_passes.Pass_util.thread_domain k) in
      List.iter
        (fun (target, degree) ->
          let r = compile ~target ~degree k in
          let threads =
            r.launch.grid_x * r.launch.block_x * r.launch.grid_y
            * r.launch.block_y
          in
          let covered_items = fst dom * snd dom in
          Alcotest.(check bool)
            (Printf.sprintf "%s covers its domain" w.name)
            true
            (threads > 0 && covered_items mod threads = 0))
        configs)
    [ Gpcc_workloads.Registry.find_exn "mm"; Gpcc_workloads.Registry.find_exn "vv" ]

let test_staged_prefixes () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let k = Gpcc_workloads.Workload.parse w 128 in
  let stages =
    Gpcc_core.Compiler.staged ~target_block_threads:128 ~merge_degree:4 k
  in
  Alcotest.(check int) "six stages" 6 (List.length stages);
  let labels = List.map (fun (l, _, _) -> l) stages in
  Alcotest.(check (list string)) "stage order"
    [
      "naive"; "+vectorization"; "+coalescing"; "+thread/block merge";
      "+prefetching"; "+partition camping elim.";
    ]
    labels;
  (* every stage's kernel computes the right answer *)
  List.iter
    (fun (label, kernel, launch) ->
      match Gpcc_workloads.Workload.check cfg280 w 128 kernel launch with
      | () -> ()
      | exception Gpcc_workloads.Workload.Check_failed m ->
          Alcotest.failf "stage %s wrong: %s" label m)
    stages

let test_explore_search () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let n = 256 in
  let k = Gpcc_workloads.Workload.parse w n in
  let measure = Gpcc_workloads.Workload.measure_gflops ~sample:1 cfg280 w n in
  let cands =
    Gpcc_core.Explore.search ~cfg:cfg280 ~block_targets:[ 64; 128 ]
      ~merge_degrees:[ 1; 4 ] k ~measure
  in
  Alcotest.(check int) "four candidates" 4 (List.length cands);
  let distinct = Gpcc_core.Explore.distinct cands in
  Alcotest.(check bool) "dedup keeps some" true (List.length distinct >= 2);
  match Gpcc_core.Explore.best cands with
  | None -> Alcotest.fail "no best candidate"
  | Some b ->
      Alcotest.(check bool) "best scored" true (b.score > 0.0);
      List.iter
        (fun (c : Gpcc_core.Explore.candidate) ->
          Alcotest.(check bool) "best is max" true (b.score >= c.score))
        cands

let test_compile_error_on_missing_domain () =
  let k =
    parse_kernel "__kernel void f(float a[16]) { float x = a[0]; x = x + 1; }"
  in
  match Gpcc_core.Compiler.run k with
  | exception Gpcc_core.Compiler.Compile_error _ -> ()
  | _ -> Alcotest.fail "missing output/domain accepted"

let test_optimized_traffic_drops () =
  (* the whole point: coalescing + merges cut off-chip traffic *)
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let n = 128 in
  let k = Gpcc_workloads.Workload.parse w n in
  let naive_launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  let rn, _ = Gpcc_workloads.Workload.execute cfg280 w n k naive_launch in
  let r = compile ~target:128 ~degree:8 k in
  let ro, _ = Gpcc_workloads.Workload.execute cfg280 w n r.kernel r.launch in
  let naive_bytes = Gpcc_sim.Stats.global_bytes rn.total in
  let opt_bytes = Gpcc_sim.Stats.global_bytes ro.total in
  Alcotest.(check bool)
    (Printf.sprintf "traffic falls (%.0f -> %.0f)" naive_bytes opt_bytes)
    true
    (opt_bytes *. 4.0 < naive_bytes)

let test_speedup_on_8800 () =
  (* Figure 11's direction: optimized beats naive, markedly on the G80
     whose strict coalescing punishes the naive kernel *)
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let n = 128 in
  let k = Gpcc_workloads.Workload.parse w n in
  let naive_launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  let tn = Gpcc_workloads.Workload.measure ~sample:2 cfg8800 w n k naive_launch in
  let r = compile ~cfg:cfg8800 ~target:128 ~degree:8 k in
  let topt = Gpcc_workloads.Workload.measure ~sample:2 cfg8800 w n r.kernel r.launch in
  Alcotest.(check bool)
    (Printf.sprintf "speedup > 3 (naive %.2f opt %.2f)" tn.gflops topt.gflops)
    true
    (topt.gflops > 3.0 *. tn.gflops)

let suite =
  let t n f = Alcotest.test_case n `Slow f in
  ( "compiler",
    [
      t "all workloads, all configs" test_all_workloads_all_configs;
      t "both GPUs" test_both_gpus;
      t "report readable" test_report_readable;
      t "launch covers domain" test_launch_covers_domain;
      t "staged prefixes (Fig 12)" test_staged_prefixes;
      t "design-space search" test_explore_search;
      t "missing domain rejected" test_compile_error_on_missing_domain;
      t "optimized traffic drops" test_optimized_traffic_drops;
      t "speedup on GTX8800" test_speedup_on_8800;
    ] )

(* appended: per-hardware deployment (paper Section 4.2) *)
let test_deploy_bundle () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let n = 256 in
  let k = Gpcc_workloads.Workload.parse w n in
  let measure cfg kernel launch =
    (Gpcc_workloads.Workload.measure ~sample:1 ~streams:3 cfg w n kernel launch)
      .gflops
  in
  let b =
    Gpcc_core.Deploy.build
      ~gpus:[ cfg8800; cfg280 ]
      ~measure k
  in
  Alcotest.(check int) "one entry per GPU" 2 (List.length b.entries);
  let r8800 = Gpcc_core.Deploy.pick b "GTX8800" in
  let r280 = Gpcc_core.Deploy.pick b "GTX280" in
  (* both versions must be correct... *)
  Gpcc_workloads.Workload.check cfg8800 w n r8800.kernel r8800.launch;
  Gpcc_workloads.Workload.check cfg280 w n r280.kernel r280.launch;
  (* ...and the description readable *)
  assert_contains "describes both" (Gpcc_core.Deploy.describe b) "GTX8800";
  (match Gpcc_core.Deploy.pick b "GTX9999" with
  | exception Gpcc_core.Deploy.No_version _ -> ()
  | _ -> Alcotest.fail "unknown GPU accepted")

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [ Alcotest.test_case "deployment bundle (4.2)" `Slow test_deploy_bundle ] )

(** Structured per-pass optimization remarks.

    Replaces the pipeline's free-form note lists as the machine-facing
    record of what each pass did: whether it fired and why (or why it
    declined), the kernel-shape metrics before and after, and the pass's
    wall-clock. Human-readable notes from the pass are kept verbatim in
    [notes] — the paper's "understandable optimization process" — while
    the structured fields feed [gpcc compile --remarks-json] and the
    bench JSON output. *)

open Gpcc_ast
module Cache = Gpcc_analysis.Analysis_cache

(** Kernel-shape metrics at a pipeline point. *)
type metrics = {
  regs : int;  (** estimated registers per thread *)
  shared_bytes : int;  (** shared memory per block *)
  threads_per_block : int;
  grid : int * int;
  block : int * int;
}

type t = {
  pass : string;  (** registry pass name, e.g. ["merge"] *)
  step : string;  (** instance label, e.g. ["thread-block merge X x16"] *)
  section : string;  (** paper section the pass implements *)
  fired : bool;
  reason : string;  (** what the pass did, or why it declined *)
  notes : string list;  (** the pass's full human-readable trace *)
  before_m : metrics;
  after_m : metrics;  (** equals [before_m] when the pass did not fire *)
  duration_ms : float;
}

let metrics (cache : Cache.t) (k : Ast.kernel) (launch : Ast.launch) : metrics
    =
  let regs, shared_bytes = Cache.regcount cache k in
  {
    regs;
    shared_bytes;
    threads_per_block = launch.Ast.block_x * launch.Ast.block_y;
    grid = (launch.Ast.grid_x, launch.Ast.grid_y);
    block = (launch.Ast.block_x, launch.Ast.block_y);
  }

(* --- JSON emission (self-contained: the core library carries no JSON
   dependency) --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_metrics (m : metrics) : string =
  Printf.sprintf
    {|{"regs":%d,"shared_bytes":%d,"threads_per_block":%d,"grid":[%d,%d],"block":[%d,%d]}|}
    m.regs m.shared_bytes m.threads_per_block (fst m.grid) (snd m.grid)
    (fst m.block) (snd m.block)

let json_of (r : t) : string =
  Printf.sprintf
    {|{"pass":"%s","step":"%s","section":"%s","fired":%b,"reason":"%s","notes":[%s],"duration_ms":%.3f,"before":%s,"after":%s}|}
    (escape r.pass) (escape r.step) (escape r.section) r.fired
    (escape r.reason)
    (String.concat ","
       (List.map (fun n -> "\"" ^ escape n ^ "\"") r.notes))
    r.duration_ms
    (json_of_metrics r.before_m)
    (json_of_metrics r.after_m)

let json_of_list (rs : t list) : string =
  "[" ^ String.concat "," (List.map json_of rs) ^ "]"

(** Fixed pool of worker domains over a shared task queue. See the mli
    for the contract. *)

type task = unit -> unit

type t = {
  queue : task Queue.t;
  mutex : Mutex.t;
  wake : Condition.t;  (** signalled when a task is queued or at shutdown *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "GPCC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec worker_loop (p : t) : unit =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.stopping do
    Condition.wait p.wake p.mutex
  done;
  if Queue.is_empty p.queue then begin
    (* stopping and drained *)
    Mutex.unlock p.mutex
  end
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    (* tasks are wrapped by [map_result]: they never raise *)
    task ();
    worker_loop p
  end

let create ?jobs () : t =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let p =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      wake = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    p.workers <-
      List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop p));
  p

let size (p : t) = List.length p.workers

let shutdown (p : t) : unit =
  Mutex.lock p.mutex;
  p.stopping <- true;
  Condition.broadcast p.wake;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.workers;
  p.workers <- []

let with_pool ?jobs (f : t -> 'a) : 'a =
  let p = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(** Run every element through [f] on the workers, collecting [Ok]/[Error]
    per element. The caller blocks until the batch drains; with no
    workers (sequential pool) the caller runs the tasks itself. *)
let map_result (p : t) (f : 'a -> 'b) (xs : 'a list) :
    ('b, exn) result list =
  match (xs, p.workers) with
  | [], _ -> []
  | xs, [] -> List.map (fun x -> try Ok (f x) with e -> Error e) xs
  | xs, _ ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      let out : ('b, exn) result option array = Array.make n None in
      let remaining = Atomic.make n in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      Mutex.lock p.mutex;
      for i = 0 to n - 1 do
        Queue.add
          (fun () ->
            let r = try Ok (f inputs.(i)) with e -> Error e in
            out.(i) <- Some r;
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock done_mutex;
              Condition.signal done_cond;
              Mutex.unlock done_mutex
            end)
          p.queue
      done;
      Condition.broadcast p.wake;
      Mutex.unlock p.mutex;
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      Array.to_list (Array.map Option.get out)

let map (p : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let results = map_result p f xs in
  List.map (function Ok y -> y | Error e -> raise e) results

let run ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  with_pool ?jobs (fun p -> map_result p f xs)

(** Analytic timing model.

    The interpreter measures *events* (instructions, transactions, bytes,
    conflicts); this module converts them into time using the machine
    description, in the spirit of the GPU analytical models the paper cites
    (Hong & Kim; Baghsorkhi et al.). Execution proceeds in waves of
    resident blocks; a wave's cycle count is the maximum of three
    pressures:

    - compute: each SM issues one warp instruction per [warp/sps] cycles
      across its resident blocks, plus bank-conflict serialization;
    - bandwidth: the wave's off-chip bytes at peak bandwidth derated by the
      partition efficiency (camping), with a per-SM cap — a single SM's
      load/store path cannot saturate the whole memory system, so
      few-block grids cannot use full bandwidth;
    - latency: each half-warp memory request keeps a warp waiting
      [mem_latency] cycles; concurrency is the SM's active warps times the
      memory-level parallelism per warp.

    Register spill (a block that does not fit the register file even
    alone) applies a flat slowdown. *)

type result = {
  occupancy : Occupancy.t;
  waves : int;
  cycles : float;
  time_ms : float;
  gflops : float;
  bandwidth_gbs : float;  (** useful off-chip traffic per second *)
  bound : string;
  partition_eff : float;
}
[@@deriving show { with_path = false }]

(** Fraction of peak bandwidth one SM's memory path can consume. *)
let sm_bandwidth_share = 0.2

let estimate (cfg : Config.t) ~(per_block : Stats.t)
    ~(launch : Gpcc_ast.Ast.launch) ~(regs_per_thread : int)
    ~(shared_per_block : int) ~(partition_eff : float) ~(mlp : float) : result
    =
  let tpb = Gpcc_ast.Ast.threads_per_block launch in
  let occ =
    Occupancy.calc cfg ~regs_per_thread ~shared_per_block
      ~threads_per_block:tpb
  in
  let resident = occ.blocks_per_sm in
  let total_blocks = Gpcc_ast.Ast.total_blocks launch in
  let wave_capacity = cfg.num_sms * resident in
  let waves = (total_blocks + wave_capacity - 1) / wave_capacity in
  let cycles_per_warp_inst =
    float_of_int cfg.warp_size /. float_of_int cfg.sps_per_sm
  in
  let eff = Float.max 0.05 (Float.min 1.0 partition_eff) in
  let bw_bytes_per_cycle =
    cfg.mem_bandwidth_gbs /. cfg.core_clock_ghz
  in
  let bytes_block = Stats.global_bytes per_block in
  (* what the memory system charges: width-derated bytes (equal to raw
     bytes when all accesses are 4-byte) *)
  let charge_block =
    if per_block.Stats.cost_bytes > 0.0 then per_block.Stats.cost_bytes
    else bytes_block
  in
  let requests_block = per_block.gld_requests +. per_block.gst_requests in
  (* average cycles of one wave; the last (possibly partial) wave is
     modeled at the same density, adequate for many-block grids and
     conservative for tiny ones *)
  let blocks_in_wave = min total_blocks wave_capacity in
  (* blocks on one (busy) SM within the wave *)
  let resident_f =
    Float.max 1.0
      (float_of_int blocks_in_wave /. float_of_int cfg.num_sms)
  in
  (* per-SM compute pressure *)
  let compute =
    (per_block.warp_insts +. per_block.bank_extra)
    *. cycles_per_warp_inst *. resident_f
  in
  (* wave-level bandwidth pressure, with the per-SM cap *)
  let mem_grid =
    charge_block *. float_of_int blocks_in_wave /. (bw_bytes_per_cycle *. eff)
  in
  let mem_sm_cap =
    charge_block *. resident_f
    /. (bw_bytes_per_cycle *. sm_bandwidth_share *. eff)
  in
  let mem = Float.max mem_grid mem_sm_cap in
  (* per-SM latency pressure *)
  let concurrency =
    Float.max 1.0 (float_of_int occ.active_warps *. mlp)
  in
  let latency =
    requests_block *. resident_f
    *. float_of_int cfg.mem_latency_cycles /. concurrency
  in
  let wave_cycles = Float.max compute (Float.max mem latency) in
  let wave_cycles = if occ.reg_spill then wave_cycles *. 2.5 else wave_cycles in
  let cycles = float_of_int waves *. wave_cycles in
  let time_s = cycles /. (cfg.core_clock_ghz *. 1e9) in
  let tb = float_of_int total_blocks in
  let bound =
    if occ.reg_spill then "register-spill"
    else if compute >= mem && compute >= latency then "compute"
    else if mem >= latency then "memory"
    else "latency"
  in
  {
    occupancy = occ;
    waves;
    cycles;
    time_ms = time_s *. 1e3;
    gflops = per_block.flops *. tb /. time_s /. 1e9;
    bandwidth_gbs = bytes_block *. tb /. time_s /. 1e9;
    bound;
    partition_eff = eff;
  }

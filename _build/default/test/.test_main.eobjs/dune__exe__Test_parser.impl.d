test/test_parser.ml: Alcotest Ast Gpcc_ast Lexer List Parser Pp QCheck QCheck_alcotest Util

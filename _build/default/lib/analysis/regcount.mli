(** Per-thread register-pressure and per-block shared-memory estimation,
    feeding occupancy (Section 2c) and the prefetch/merge decisions. *)

val estimate : Gpcc_ast.Ast.kernel -> int
val shared_bytes : Gpcc_ast.Ast.kernel -> int

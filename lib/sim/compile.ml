(** Compile-to-closures simulator backend.

    The tree-walking interpreter ({!Interp}) re-dispatches on the AST and
    resolves every variable through a [Hashtbl] per statement per block.
    This module stages that work: once per (kernel, launch) pair it

    - resolves every scalar variable to a fixed slot index in a flat
      environment array (per declaration site — sound because the type
      checker enforces strict lexical scoping with no shadowing),
    - specializes each statement and expression node into an OCaml
      closure over a per-block runtime record, and
    - classifies lane-invariant (uniform) subexpressions — literals,
      [#pragma gpcc dim]-bound int parameters, block-level builtins and
      loop variables with uniform bounds — so they evaluate as scalars
      fused into the per-lane loops instead of broadcast arrays.

    The compiled code is bit-identical to the reference interpreter in
    both output arrays and {!Stats}: per-lane float operations are the
    same operations on the same values, exact-integer statistics are
    order-insensitive sums, and the only inexact accumulator
    ([cost_bytes]) is fed through the shared {!Interp.account_global} /
    {!Interp.account_shared} in the same evaluation order (left to
    right, matching the sequenced reference).

    Kernels using unsupported or ill-typed shapes fail compilation with
    {!Unsupported}; the caller (|Launch|) falls back to the reference
    backend, which reproduces the interpreter's runtime errors. *)

open Gpcc_ast
open Gpcc_analysis

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(** Split the kernel body at top-level [__global_sync] barriers.
    (Authoritative copy; {!Launch.phases_of_body} aliases this.) *)
let phases_of_body (body : Ast.block) : Ast.block list =
  let rec go cur acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | Ast.Global_sync :: rest -> go [] (List.rev cur :: acc) rest
    | s :: rest -> go (s :: cur) acc rest
  in
  go [] [] body

(* --- per-block runtime state --- *)

type rt = {
  c : Interp.bctx;  (** stats, config, launch, tids, txparts *)
  slots : Interp.vals array;  (** varying scalars, one slot per decl site *)
  shareds : float array array;  (** shared arrays, one slot per name *)
  globals : Devmem.arr array;  (** resolved global parameters *)
  uregs : int array;  (** uniform int registers (loop variables) *)
  idx : int array;  (** per-lane [idx] values, [||] unless used *)
  idy : int array;
}

(* --- compiled expressions ---

   Two channels: [U*] closures produce one scalar shared by every active
   lane (uniform); [X*] closures produce per-lane arrays indexed by the
   linear thread id. Both receive the active mask because statistics
   (flop counts, memory accounting) are per active lane. *)

type cexpr =
  | UI of (rt -> int array -> int)
  | UF of (rt -> int array -> float)
  | UB of (rt -> int array -> bool)
  | XI of (rt -> int array -> int array)
  | XF of (rt -> int array -> float array)
  | XB of (rt -> int array -> bool array)
  | XF2 of (rt -> int array -> float array * float array)
  | XF4 of
      (rt -> int array -> float array * float array * float array * float array)

type cstmt = rt -> int array -> unit

(* --- compile-time environment --- *)

module Smap = Map.Make (String)

type binding =
  | Bscalar of int * Ast.scalar  (** slot, declared type *)
  | Bloop_u of int  (** uniform loop variable: register index *)
  | Bloop_v of int  (** varying loop variable: slot holding a [VI] *)
  | Bshared of int * int array * int  (** slot, strides, padded length *)
  | Bglobal of int * int array * string  (** slot, expected strides, name *)
  | Bconst of int  (** [k_sizes]-bound int parameter *)

type cstate = {
  mutable nslots : int;
  mutable nuregs : int;
  mutable shared_specs : (string * Layout.t * int * int) list;
      (** name, layout, padded length, slot — keyed by name like the
          reference interpreter's environment *)
  mutable global_params : (string * int array) list;  (** slot order *)
  mutable uses_idx : bool;
  mutable uses_idy : bool;
  cn : int;  (** threads per block *)
  claunch : Ast.launch;
}

let fresh_slot st =
  let s = st.nslots in
  st.nslots <- s + 1;
  s

let fresh_ureg st =
  let r = st.nuregs in
  st.nuregs <- r + 1;
  r

(* --- runtime helpers --- *)

let slot_vi rt s =
  match rt.slots.(s) with
  | Interp.VI a -> a
  | _ -> invalid_arg "Compile: int slot"

let slot_vf rt s =
  match rt.slots.(s) with
  | Interp.VF a -> a
  | _ -> invalid_arg "Compile: float slot"

let slot_vb rt s =
  match rt.slots.(s) with
  | Interp.VB a -> a
  | _ -> invalid_arg "Compile: bool slot"

let slot_vf2 rt s =
  match rt.slots.(s) with
  | Interp.VF2 (x, y) -> (x, y)
  | _ -> invalid_arg "Compile: float2 slot"

let slot_vf4 rt s =
  match rt.slots.(s) with
  | Interp.VF4 (x, y, z, w) -> (x, y, z, w)
  | _ -> invalid_arg "Compile: float4 slot"

let inst rt = Interp.inst rt.c
let flops rt k = Interp.flops rt.c k

(* Evaluated operand views: a scalar, a typed array, or a fused
   conversion from an int/bool array — reading per lane avoids the
   coercion arrays the reference interpreter allocates. *)

type fget = FS of float | FA of float array | FI of int array

let fread g l =
  match g with FS v -> v | FA a -> a.(l) | FI a -> float_of_int a.(l)

type iget = IS of int | IA of int array | IBA of bool array

let iread g l =
  match g with
  | IS v -> v
  | IA a -> a.(l)
  | IBA a -> if a.(l) then 1 else 0

type bget = BS of bool | BA of bool array | BIA of int array

let bread g l =
  match g with BS v -> v | BA a -> a.(l) | BIA a -> a.(l) <> 0

(** Float view of an operand ([as_float] semantics: int promotes, bool
    and vectors are runtime errors — compile-time fallback here). *)
let fsrc = function
  | UI f -> fun rt m -> FS (float_of_int (f rt m))
  | UF f -> fun rt m -> FS (f rt m)
  | XI f -> fun rt m -> FI (f rt m)
  | XF f -> fun rt m -> FA (f rt m)
  | UB _ | XB _ | XF2 _ | XF4 _ -> unsupported "expected a float value"

(** Int view ([as_int] semantics: bool converts, float is an error). *)
let isrc = function
  | UI f -> fun rt m -> IS (f rt m)
  | UB f -> fun rt m -> IS (if f rt m then 1 else 0)
  | XI f -> fun rt m -> IA (f rt m)
  | XB f -> fun rt m -> IBA (f rt m)
  | UF _ | XF _ | XF2 _ | XF4 _ -> unsupported "expected an int value"

(** Bool view ([as_bool] semantics: int converts, float is an error). *)
let bsrc = function
  | UB f -> fun rt m -> BS (f rt m)
  | UI f -> fun rt m -> BS (f rt m <> 0)
  | XB f -> fun rt m -> BA (f rt m)
  | XI f -> fun rt m -> BIA (f rt m)
  | UF _ | XF _ | XF2 _ | XF4 _ -> unsupported "expected a boolean value"

let is_uniform = function
  | UI _ | UF _ | UB _ -> true
  | XI _ | XF _ | XB _ | XF2 _ | XF4 _ -> false

(* --- expression compilation --- *)

let rec comp_e (st : cstate) (env : binding Smap.t) (e : Ast.expr) : cexpr =
  match e with
  | Int_lit k -> UI (fun _ _ -> k)
  | Float_lit f -> UF (fun _ _ -> f)
  | Builtin b -> comp_builtin st b
  | Var v -> (
      match Smap.find_opt v env with
      | None -> unsupported "unbound variable %s" v
      | Some (Bconst k) -> UI (fun _ _ -> k)
      | Some (Bloop_u r) -> UI (fun rt _ -> rt.uregs.(r))
      | Some (Bloop_v s) -> XI (fun rt _ -> slot_vi rt s)
      | Some (Bscalar (s, Int)) -> XI (fun rt _ -> slot_vi rt s)
      | Some (Bscalar (s, Float)) -> XF (fun rt _ -> slot_vf rt s)
      | Some (Bscalar (s, Bool)) -> XB (fun rt _ -> slot_vb rt s)
      | Some (Bscalar (s, Float2)) -> XF2 (fun rt _ -> slot_vf2 rt s)
      | Some (Bscalar (s, Float4)) -> XF4 (fun rt _ -> slot_vf4 rt s)
      | Some (Bshared _ | Bglobal _) -> unsupported "array %s used as scalar" v)
  | Unop (Neg, a) -> comp_neg st env a
  | Unop (Not, a) ->
      let ce = comp_e st env a in
      let f = bsrc ce in
      if is_uniform ce then
        UB
          (fun rt m ->
            inst rt;
            not (bread (f rt m) 0))
      else
        XB
          (fun rt m ->
            inst rt;
            let g = f rt m in
            let out = Array.make rt.c.Interp.n false in
            Array.iter (fun l -> out.(l) <- not (bread g l)) m;
            out)
  | Binop (op, a, b) -> comp_binop st env op a b
  | Index (arr, idxs) -> comp_load st env arr idxs
  | Vload { v_arr; v_width; v_index } -> comp_vload st env v_arr v_width v_index
  | Field (a, f) -> comp_field st env a f
  | Call (f, args) -> comp_call st env f args
  | Select (cond, a, b) -> comp_select st env cond a b

and comp_builtin st (b : Ast.builtin) : cexpr =
  let l = st.claunch in
  match b with
  | Tidx -> XI (fun rt _ -> rt.c.Interp.tidx)
  | Tidy -> XI (fun rt _ -> rt.c.Interp.tidy)
  | Bidx -> UI (fun rt _ -> rt.c.Interp.bidx)
  | Bidy -> UI (fun rt _ -> rt.c.Interp.bidy)
  | Bdimx ->
      let v = l.block_x in
      UI (fun _ _ -> v)
  | Bdimy ->
      let v = l.block_y in
      UI (fun _ _ -> v)
  | Gdimx ->
      let v = l.grid_x in
      UI (fun _ _ -> v)
  | Gdimy ->
      let v = l.grid_y in
      UI (fun _ _ -> v)
  | Idx ->
      st.uses_idx <- true;
      XI (fun rt _ -> rt.idx)
  | Idy ->
      st.uses_idy <- true;
      XI (fun rt _ -> rt.idy)

and comp_neg st env a : cexpr =
  match comp_e st env a with
  | UI f ->
      UI
        (fun rt m ->
          inst rt;
          -f rt m)
  | UF f ->
      UF
        (fun rt m ->
          inst rt;
          let v = f rt m in
          flops rt (Array.length m);
          -.v)
  | XI f ->
      XI
        (fun rt m ->
          inst rt;
          let x = f rt m in
          let out = Array.make rt.c.Interp.n 0 in
          Array.iter (fun l -> out.(l) <- -x.(l)) m;
          out)
  | XF f ->
      XF
        (fun rt m ->
          inst rt;
          let x = f rt m in
          flops rt (Array.length m);
          let out = Array.make rt.c.Interp.n 0.0 in
          Array.iter (fun l -> out.(l) <- -.x.(l)) m;
          out)
  | XF2 f ->
      XF2
        (fun rt m ->
          inst rt;
          let x, y = f rt m in
          let neg a =
            let out = Array.make rt.c.Interp.n 0.0 in
            Array.iter (fun l -> out.(l) <- -.a.(l)) m;
            out
          in
          (neg x, neg y))
  | XF4 f ->
      XF4
        (fun rt m ->
          inst rt;
          let x, y, z, w = f rt m in
          let neg a =
            let out = Array.make rt.c.Interp.n 0.0 in
            Array.iter (fun l -> out.(l) <- -.a.(l)) m;
            out
          in
          (neg x, neg y, neg z, neg w))
  | UB _ | XB _ -> unsupported "negation of a boolean"

and comp_binop st env op a b : cexpr =
  let ca = comp_e st env a in
  let cb = comp_e st env b in
  let bothu = is_uniform ca && is_uniform cb in
  match op with
  | Add | Sub | Mul | Div -> (
      match (ca, cb) with
      | (UI _ | XI _), (UI _ | XI _) -> comp_int_arith st op ca cb
      | (XF2 _ | XF4 _), _ | _, (XF2 _ | XF4 _) -> comp_vec_arith st op ca cb
      | _ ->
          let fop =
            match op with
            | Add -> ( +. )
            | Sub -> ( -. )
            | Mul -> ( *. )
            | _ -> ( /. )
          in
          let fa = fsrc ca and fb = fsrc cb in
          if bothu then
            UF
              (fun rt m ->
                inst rt;
                let x = fread (fa rt m) 0 in
                let y = fread (fb rt m) 0 in
                flops rt (Array.length m);
                fop x y)
          else
            XF
              (fun rt m ->
                inst rt;
                let ga = fa rt m in
                let gb = fb rt m in
                flops rt (Array.length m);
                let out = Array.make rt.c.Interp.n 0.0 in
                Array.iter
                  (fun l -> out.(l) <- fop (fread ga l) (fread gb l))
                  m;
                out))
  | Mod -> (
      match (ca, cb) with
      | (UI _ | XI _), (UI _ | XI _) ->
          let fa = isrc ca and fb = isrc cb in
          let emod x y =
            if y = 0 then Interp.err "mod by zero";
            ((x mod y) + y) mod y
          in
          if bothu then
            UI
              (fun rt m ->
                inst rt;
                let x = iread (fa rt m) 0 in
                let y = iread (fb rt m) 0 in
                emod x y)
          else
            XI
              (fun rt m ->
                inst rt;
                let ga = fa rt m in
                let gb = fb rt m in
                let out = Array.make rt.c.Interp.n 0 in
                Array.iter
                  (fun l -> out.(l) <- emod (iread ga l) (iread gb l))
                  m;
                out)
      | _ -> unsupported "%% on non-int values")
  | Lt -> comp_cmp st ca cb ~iop:(fun x y -> x < y) ~fop:(fun x y -> x < y)
  | Le -> comp_cmp st ca cb ~iop:(fun x y -> x <= y) ~fop:(fun x y -> x <= y)
  | Gt -> comp_cmp st ca cb ~iop:(fun x y -> x > y) ~fop:(fun x y -> x > y)
  | Ge -> comp_cmp st ca cb ~iop:(fun x y -> x >= y) ~fop:(fun x y -> x >= y)
  | Eq -> comp_cmp st ca cb ~iop:(fun x y -> x = y) ~fop:(fun x y -> x = y)
  | Ne -> comp_cmp st ca cb ~iop:(fun x y -> x <> y) ~fop:(fun x y -> x <> y)
  | And | Or ->
      let fa = bsrc ca and fb = bsrc cb in
      let disj = op = Or in
      (* both operands always evaluate, as in the reference *)
      if bothu then
        UB
          (fun rt m ->
            inst rt;
            let x = bread (fa rt m) 0 in
            let y = bread (fb rt m) 0 in
            if disj then x || y else x && y)
      else
        XB
          (fun rt m ->
            inst rt;
            let ga = fa rt m in
            let gb = fb rt m in
            let out = Array.make rt.c.Interp.n false in
            if disj then
              Array.iter (fun l -> out.(l) <- bread ga l || bread gb l) m
            else Array.iter (fun l -> out.(l) <- bread ga l && bread gb l) m;
            out)

and comp_int_arith _st op ca cb : cexpr =
  let iop =
    match op with
    | Add -> ( + )
    | Sub -> ( - )
    | Mul -> ( * )
    | _ -> fun a b -> if b = 0 then Interp.err "division by zero" else a / b
  in
  let fa = isrc ca and fb = isrc cb in
  if is_uniform ca && is_uniform cb then
    UI
      (fun rt m ->
        inst rt;
        let x = iread (fa rt m) 0 in
        let y = iread (fb rt m) 0 in
        iop x y)
  else
    XI
      (fun rt m ->
        inst rt;
        let ga = fa rt m in
        let gb = fb rt m in
        let out = Array.make rt.c.Interp.n 0 in
        Array.iter (fun l -> out.(l) <- iop (iread ga l) (iread gb l)) m;
        out)

and comp_vec_arith _st op ca cb : cexpr =
  let fop =
    match op with Add -> ( +. ) | Sub -> ( -. ) | Mul -> ( *. ) | _ -> ( /. )
  in
  let comb rt m x y =
    let out = Array.make rt.c.Interp.n 0.0 in
    Array.iter (fun l -> out.(l) <- fop x.(l) y.(l)) m;
    out
  in
  match (ca, cb) with
  | XF2 fa, XF2 fb ->
      XF2
        (fun rt m ->
          inst rt;
          let x1, y1 = fa rt m in
          let x2, y2 = fb rt m in
          flops rt (2 * Array.length m);
          (comb rt m x1 x2, comb rt m y1 y2))
  | XF4 fa, XF4 fb ->
      XF4
        (fun rt m ->
          inst rt;
          let a1, b1, c1, d1 = fa rt m in
          let a2, b2, c2, d2 = fb rt m in
          flops rt (4 * Array.length m);
          (comb rt m a1 a2, comb rt m b1 b2, comb rt m c1 c2, comb rt m d1 d2))
  | _ -> unsupported "mixed vector/scalar arithmetic"

and comp_cmp _st ca cb ~(iop : int -> int -> bool) ~(fop : float -> float -> bool)
    : cexpr =
  match (ca, cb) with
  | UI fa, UI fb ->
      UB
        (fun rt m ->
          inst rt;
          let x = fa rt m in
          let y = fb rt m in
          iop x y)
  | (UI _ | XI _), (UI _ | XI _) ->
      let fa = isrc ca and fb = isrc cb in
      XB
        (fun rt m ->
          inst rt;
          let ga = fa rt m in
          let gb = fb rt m in
          let out = Array.make rt.c.Interp.n false in
          Array.iter (fun l -> out.(l) <- iop (iread ga l) (iread gb l)) m;
          out)
  | _ ->
      let fa = fsrc ca and fb = fsrc cb in
      if is_uniform ca && is_uniform cb then
        UB
          (fun rt m ->
            inst rt;
            let x = fread (fa rt m) 0 in
            let y = fread (fb rt m) 0 in
            fop x y)
      else
        XB
          (fun rt m ->
            inst rt;
            let ga = fa rt m in
            let gb = fb rt m in
            let out = Array.make rt.c.Interp.n false in
            Array.iter (fun l -> out.(l) <- fop (fread ga l) (fread gb l)) m;
            out)

and comp_load st env arr idxs : cexpr =
  match Smap.find_opt arr env with
  | Some (Bglobal (gslot, strides, name)) ->
      if List.length idxs <> Array.length strides then
        unsupported "rank mismatch accessing %s" arr;
      let steps = comp_offsets st env strides idxs in
      if List.for_all (function `U _ -> true | `V _ -> false) steps then
        UF
          (fun rt m ->
            inst rt;
            let g = rt.globals.(gslot) in
            let data = g.Devmem.data in
            let len = Bigarray.Array1.dim data in
            let o = eval_usteps steps rt m in
            if o < 0 || o >= len then
              Interp.err "out-of-bounds load %s[%d] (size %d)" name o len;
            let v = data.{o} in
            let addr = g.Devmem.base + (o * 4) in
            Interp.account_global rt.c ~is_store:false ~elt_bytes:4 m (fun _ ->
                addr);
            v)
      else
        XF
          (fun rt m ->
            inst rt;
            let g = rt.globals.(gslot) in
            let data = g.Devmem.data in
            let len = Bigarray.Array1.dim data in
            let u, offs = eval_steps steps rt m in
            let out = Array.make rt.c.Interp.n 0.0 in
            Array.iter
              (fun l ->
                let o = offs.(l) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds load %s[%d] (size %d)" name o len;
                out.(l) <- data.{o})
              m;
            let base = g.Devmem.base in
            Interp.account_global rt.c ~is_store:false ~elt_bytes:4 m (fun l ->
                base + ((offs.(l) + u) * 4));
            out)
  | Some (Bshared (sslot, strides, len)) ->
      if List.length idxs <> Array.length strides then
        unsupported "rank mismatch accessing shared %s" arr;
      let steps = comp_offsets st env strides idxs in
      let name = arr in
      if List.for_all (function `U _ -> true | `V _ -> false) steps then
        UF
          (fun rt m ->
            inst rt;
            let data = rt.shareds.(sslot) in
            let o = eval_usteps steps rt m in
            if o < 0 || o >= len then
              Interp.err "out-of-bounds shared load %s[%d] (size %d)" name o
                len;
            let v = data.(o) in
            Interp.account_shared rt.c m (fun _ -> o);
            v)
      else
        XF
          (fun rt m ->
            inst rt;
            let data = rt.shareds.(sslot) in
            let u, offs = eval_steps steps rt m in
            let out = Array.make rt.c.Interp.n 0.0 in
            Array.iter
              (fun l ->
                let o = offs.(l) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds shared load %s[%d] (size %d)" name
                    o len;
                out.(l) <- data.(o))
              m;
            Interp.account_shared rt.c m (fun l -> offs.(l) + u);
            out)
  | Some _ -> unsupported "%s is not an array" arr
  | None -> unsupported "unbound variable %s" arr

(** Compile the per-dimension index steps of a flat-offset computation.
    Steps evaluate strictly in index order (a condition inside an index
    can reach memory); uniform dimensions contribute a scalar. *)
and comp_offsets st env (strides : int array) (idxs : Ast.expr list) :
    [ `U of (rt -> int array -> int) * int
    | `V of (rt -> int array -> iget) * int ]
    list =
  List.mapi
    (fun d idx ->
      let stride = strides.(d) in
      match comp_e st env idx with
      | UI f -> `U (f, stride)
      | UB f -> `U ((fun rt m -> if f rt m then 1 else 0), stride)
      | (XI _ | XB _) as ce -> `V (isrc ce, stride)
      | UF _ | XF _ | XF2 _ | XF4 _ -> unsupported "expected an int value")
    idxs

and eval_usteps steps rt m : int =
  List.fold_left
    (fun acc step ->
      match step with
      | `U (f, stride) -> acc + (f rt m * stride)
      | `V _ -> assert false)
    0 steps

and eval_steps steps rt m : int * int array =
  let u = ref 0 in
  let offs = Array.make rt.c.Interp.n 0 in
  List.iter
    (fun step ->
      match step with
      | `U (f, stride) -> u := !u + (f rt m * stride)
      | `V (f, stride) -> (
          match f rt m with
          | IS v -> u := !u + (v * stride)
          | IA a -> Array.iter (fun l -> offs.(l) <- offs.(l) + (a.(l) * stride)) m
          | IBA a ->
              Array.iter
                (fun l -> if a.(l) then offs.(l) <- offs.(l) + stride)
                m))
    steps;
  (!u, offs)

and comp_vload st env arr width idx : cexpr =
  match Smap.find_opt arr env with
  | Some (Bglobal (gslot, _, name)) ->
      let fidx = isrc (comp_e st env idx) in
      let mk =
        fun rt m ->
        inst rt;
        let g = rt.globals.(gslot) in
        let data = g.Devmem.data in
        let len = Bigarray.Array1.dim data in
        let iv = fidx rt m in
        let comp k =
          let out = Array.make rt.c.Interp.n 0.0 in
          Array.iter
            (fun l ->
              let o = (iread iv l * width) + k in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds vector load %s[%d] (size %d)" name o
                  len;
              out.(l) <- data.{o})
            m;
          out
        in
        let comps = Array.init width comp in
        let base = g.Devmem.base in
        Interp.account_global rt.c ~is_store:false ~elt_bytes:(4 * width) m
          (fun l -> base + (iread iv l * width * 4));
        comps
      in
      if width = 2 then
        XF2
          (fun rt m ->
            let comps = mk rt m in
            (comps.(0), comps.(1)))
      else if width = 4 then
        XF4
          (fun rt m ->
            let comps = mk rt m in
            (comps.(0), comps.(1), comps.(2), comps.(3)))
      else unsupported "vector width %d" width
  | _ -> unsupported "vector load from non-global array %s" arr

and comp_field st env a f : cexpr =
  match (comp_e st env a, f) with
  | XF2 fa, Ast.FX -> XF (fun rt m -> fst (fa rt m))
  | XF2 fa, Ast.FY -> XF (fun rt m -> snd (fa rt m))
  | XF4 fa, Ast.FX ->
      XF
        (fun rt m ->
          let x, _, _, _ = fa rt m in
          x)
  | XF4 fa, Ast.FY ->
      XF
        (fun rt m ->
          let _, y, _, _ = fa rt m in
          y)
  | XF4 fa, Ast.FZ ->
      XF
        (fun rt m ->
          let _, _, z, _ = fa rt m in
          z)
  | XF4 fa, Ast.FW ->
      XF
        (fun rt m ->
          let _, _, _, w = fa rt m in
          w)
  | _ -> unsupported "bad vector field access"

and comp_call st env f args : cexpr =
  let unary g =
    match args with
    | [ a ] -> (
        match comp_e st env a with
        | (UI _ | UF _) as ce ->
            let fa = fsrc ce in
            UF
              (fun rt m ->
                inst rt;
                flops rt (Array.length m);
                g (fread (fa rt m) 0))
        | (XI _ | XF _) as ce ->
            let fa = fsrc ce in
            XF
              (fun rt m ->
                inst rt;
                flops rt (Array.length m);
                let ga = fa rt m in
                let out = Array.make rt.c.Interp.n 0.0 in
                Array.iter (fun l -> out.(l) <- g (fread ga l)) m;
                out)
        | _ -> unsupported "expected a float value")
    | _ -> unsupported "%s expects one argument" f
  in
  let binary_f g =
    match args with
    | [ a; b ] ->
        let ca = comp_e st env a and cb = comp_e st env b in
        let fa = fsrc ca and fb = fsrc cb in
        if is_uniform ca && is_uniform cb then
          UF
            (fun rt m ->
              inst rt;
              flops rt (Array.length m);
              let x = fread (fa rt m) 0 in
              let y = fread (fb rt m) 0 in
              g x y)
        else
          XF
            (fun rt m ->
              inst rt;
              flops rt (Array.length m);
              let ga = fa rt m in
              let gb = fb rt m in
              let out = Array.make rt.c.Interp.n 0.0 in
              Array.iter (fun l -> out.(l) <- g (fread ga l) (fread gb l)) m;
              out)
    | _ -> unsupported "%s expects two arguments" f
  in
  match f with
  | "sqrtf" -> unary sqrt
  | "fabsf" -> unary Float.abs
  | "expf" -> unary exp
  | "logf" -> unary log
  | "sinf" -> unary sin
  | "cosf" -> unary cos
  | "fmaxf" -> binary_f Float.max
  | "fminf" -> binary_f Float.min
  | "min" | "max" -> (
      match args with
      | [ a; b ] ->
          let ca = comp_e st env a and cb = comp_e st env b in
          let fa = isrc ca and fb = isrc cb in
          let g = if f = "min" then min else max in
          if is_uniform ca && is_uniform cb then
            UI
              (fun rt m ->
                inst rt;
                let x = iread (fa rt m) 0 in
                let y = iread (fb rt m) 0 in
                g x y)
          else
            XI
              (fun rt m ->
                inst rt;
                let ga = fa rt m in
                let gb = fb rt m in
                let out = Array.make rt.c.Interp.n 0 in
                Array.iter (fun l -> out.(l) <- g (iread ga l) (iread gb l)) m;
                out)
      | _ -> unsupported "%s expects two arguments" f)
  | "make_float2" -> (
      match args with
      | [ a; b ] ->
          let fa = fsrc (comp_e st env a) in
          let fb = fsrc (comp_e st env b) in
          XF2
            (fun rt m ->
              inst rt;
              let x = materialize_f rt m (fa rt m) in
              let y = materialize_f rt m (fb rt m) in
              (x, y))
      | _ -> unsupported "make_float2 expects two arguments")
  | "make_float4" -> (
      match args with
      | [ a; b; d; e ] ->
          let fa = fsrc (comp_e st env a) in
          let fb = fsrc (comp_e st env b) in
          let fd = fsrc (comp_e st env d) in
          let fe = fsrc (comp_e st env e) in
          XF4
            (fun rt m ->
              inst rt;
              let x = materialize_f rt m (fa rt m) in
              let y = materialize_f rt m (fb rt m) in
              let z = materialize_f rt m (fd rt m) in
              let w = materialize_f rt m (fe rt m) in
              (x, y, z, w))
      | _ -> unsupported "make_float4 expects four arguments")
  | _ -> unsupported "unknown intrinsic %s" f

and materialize_f rt m (g : fget) : float array =
  match g with
  | FA a -> a
  | FS v ->
      let out = Array.make rt.c.Interp.n 0.0 in
      Array.iter (fun l -> out.(l) <- v) m;
      out
  | FI a ->
      let out = Array.make rt.c.Interp.n 0.0 in
      Array.iter (fun l -> out.(l) <- float_of_int a.(l)) m;
      out

and comp_select st env cond a b : cexpr =
  let cc = comp_e st env cond in
  let ca = comp_e st env a in
  let cb = comp_e st env b in
  let fc = bsrc cc in
  let allu = is_uniform cc && is_uniform ca && is_uniform cb in
  match (ca, cb) with
  | (UI _ | XI _), (UI _ | XI _) ->
      let fa = isrc ca and fb = isrc cb in
      if allu then
        UI
          (fun rt m ->
            inst rt;
            let bv = bread (fc rt m) 0 in
            let x = iread (fa rt m) 0 in
            let y = iread (fb rt m) 0 in
            if bv then x else y)
      else
        XI
          (fun rt m ->
            inst rt;
            let gc = fc rt m in
            let ga = fa rt m in
            let gb = fb rt m in
            let out = Array.make rt.c.Interp.n 0 in
            Array.iter
              (fun l -> out.(l) <- (if bread gc l then iread ga l else iread gb l))
              m;
            out)
  | (UB _ | XB _), (UB _ | XB _) ->
      let fa = bsrc ca and fb = bsrc cb in
      if allu then
        UB
          (fun rt m ->
            inst rt;
            let bv = bread (fc rt m) 0 in
            let x = bread (fa rt m) 0 in
            let y = bread (fb rt m) 0 in
            if bv then x else y)
      else
        XB
          (fun rt m ->
            inst rt;
            let gc = fc rt m in
            let ga = fa rt m in
            let gb = fb rt m in
            let out = Array.make rt.c.Interp.n false in
            Array.iter
              (fun l -> out.(l) <- (if bread gc l then bread ga l else bread gb l))
              m;
            out)
  | _ ->
      let fa = fsrc ca and fb = fsrc cb in
      if allu then
        UF
          (fun rt m ->
            inst rt;
            let bv = bread (fc rt m) 0 in
            let x = fread (fa rt m) 0 in
            let y = fread (fb rt m) 0 in
            if bv then x else y)
      else
        XF
          (fun rt m ->
            inst rt;
            let gc = fc rt m in
            let ga = fa rt m in
            let gb = fb rt m in
            let out = Array.make rt.c.Interp.n 0.0 in
            Array.iter
              (fun l -> out.(l) <- (if bread gc l then fread ga l else fread gb l))
              m;
            out)

(* --- statements --- *)

and fresh_vals n (sc : Ast.scalar) : Interp.vals =
  match sc with
  | Int -> Interp.VI (Array.make n 0)
  | Float -> Interp.VF (Array.make n 0.0)
  | Bool -> Interp.VB (Array.make n false)
  | Float2 -> Interp.VF2 (Array.make n 0.0, Array.make n 0.0)
  | Float4 ->
      Interp.VF4
        ( Array.make n 0.0,
          Array.make n 0.0,
          Array.make n 0.0,
          Array.make n 0.0 )

(** Masked store into a scalar slot with the reference interpreter's
    promotion rules (int->float, bool->int, int->bool). *)
and store_to_slot slot (sc : Ast.scalar) (ce : cexpr) : cstmt =
  match (sc, ce) with
  | Int, (UI _ | XI _ | UB _ | XB _) ->
      let f = isrc ce in
      fun rt m ->
        let g = f rt m in
        let d = slot_vi rt slot in
        (match g with
        | IS v -> Array.iter (fun l -> d.(l) <- v) m
        | IA a -> Array.iter (fun l -> d.(l) <- a.(l)) m
        | IBA a -> Array.iter (fun l -> d.(l) <- (if a.(l) then 1 else 0)) m)
  | Float, (UI _ | UF _ | XI _ | XF _) ->
      let f = fsrc ce in
      fun rt m ->
        let g = f rt m in
        let d = slot_vf rt slot in
        (match g with
        | FS v -> Array.iter (fun l -> d.(l) <- v) m
        | FA a -> Array.iter (fun l -> d.(l) <- a.(l)) m
        | FI a -> Array.iter (fun l -> d.(l) <- float_of_int a.(l)) m)
  | Bool, (UB _ | XB _ | UI _ | XI _) ->
      let f = bsrc ce in
      fun rt m ->
        let g = f rt m in
        let d = slot_vb rt slot in
        (match g with
        | BS v -> Array.iter (fun l -> d.(l) <- v) m
        | BA a -> Array.iter (fun l -> d.(l) <- a.(l)) m
        | BIA a -> Array.iter (fun l -> d.(l) <- a.(l) <> 0) m)
  | Float2, XF2 f ->
      fun rt m ->
        let sx, sy = f rt m in
        let dx, dy = slot_vf2 rt slot in
        Array.iter
          (fun l ->
            dx.(l) <- sx.(l);
            dy.(l) <- sy.(l))
          m
  | Float4, XF4 f ->
      fun rt m ->
        let sa, sb, sc4, sd = f rt m in
        let da, db, dc, dd = slot_vf4 rt slot in
        Array.iter
          (fun l ->
            da.(l) <- sa.(l);
            db.(l) <- sb.(l);
            dc.(l) <- sc4.(l);
            dd.(l) <- sd.(l))
          m
  | _ -> unsupported "incompatible assignment"

and shared_slot st name (a : Ast.array_ty) : int * Layout.t * int =
  let lay = Layout.make ~pad:false name a in
  match List.find_opt (fun (n, _, _, _) -> n = name) st.shared_specs with
  | Some (_, lay0, len, slot) ->
      if lay0 <> lay then
        unsupported "conflicting shared layouts for %s" name;
      (slot, lay, len)
  | None ->
      let slot = List.length st.shared_specs in
      let len = max 1 (Layout.size_elems lay) in
      st.shared_specs <- st.shared_specs @ [ (name, lay, len, slot) ];
      (slot, lay, len)

and assigns_var name (b : Ast.block) : bool =
  let rec stmt = function
    | Ast.Assign (Lvar v, _) -> v = name
    | Ast.Assign (_, _) -> false
    | Ast.If (_, t, f) -> block t || block f
    | Ast.For l -> block l.l_body
    | Ast.Decl _ | Ast.Sync | Ast.Global_sync | Ast.Comment _ -> false
  and block b = List.exists stmt b in
  block b

and comp_stmt st env (s : Ast.stmt) : binding Smap.t * cstmt option =
  match s with
  | Comment _ -> (env, None)
  | Global_sync ->
      (* top-level barriers are phase splits; a nested one is a no-op,
         exactly like the reference *)
      (env, None)
  | Sync ->
      ( env,
        Some
          (fun rt _ ->
            let s = rt.c.Interp.stats in
            s.Stats.syncs <- s.Stats.syncs +. 1.;
            rt.c.Interp.epoch <- rt.c.Interp.epoch + 1;
            inst rt) )
  | Decl { d_name; d_ty = Scalar sc; d_init } ->
      let slot = fresh_slot st in
      let stm =
        match d_init with
        | None -> fun rt _ -> rt.slots.(slot) <- fresh_vals rt.c.Interp.n sc
        | Some e ->
            let store = store_to_slot slot sc (comp_e st env e) in
            fun rt m ->
              rt.slots.(slot) <- fresh_vals rt.c.Interp.n sc;
              inst rt;
              store rt m
      in
      (Smap.add d_name (Bscalar (slot, sc)) env, Some stm)
  | Decl { d_name; d_ty = Array ({ space = Shared; _ } as a); _ } ->
      let slot, lay, len = shared_slot st d_name a in
      let strides = Array.of_list (Layout.strides lay) in
      (* storage is pre-created zeroed in [make_block]; the reference
         creates it zeroed on first execution, which is equivalent *)
      (Smap.add d_name (Bshared (slot, strides, len)) env, None)
  | Decl { d_name; d_ty = Array _; _ } ->
      unsupported "declaration of non-shared array %s in kernel body" d_name
  | Assign (lv, e) -> (env, Some (comp_assign st env lv e))
  | If (cond, t, f) -> (
      let cc = comp_e st env cond in
      let tstm = comp_block st env t in
      let fstm = comp_block st env f in
      match cc with
      | UB _ | UI _ ->
          let fc = bsrc cc in
          ( env,
            Some
              (fun rt m ->
                inst rt;
                if bread (fc rt m) 0 then tstm rt m else fstm rt m) )
      | XB _ | XI _ ->
          let fc = bsrc cc in
          ( env,
            Some
              (fun rt m ->
                inst rt;
                let g = fc rt m in
                let nt = ref 0 in
                Array.iter (fun l -> if bread g l then incr nt) m;
                let nt = !nt in
                let nm = Array.length m in
                let tm = Array.make nt 0 and fm = Array.make (nm - nt) 0 in
                let ti = ref 0 and fi = ref 0 in
                Array.iter
                  (fun l ->
                    if bread g l then begin
                      tm.(!ti) <- l;
                      incr ti
                    end
                    else begin
                      fm.(!fi) <- l;
                      incr fi
                    end)
                  m;
                if nt > 0 && nm - nt > 0 then begin
                  let s = rt.c.Interp.stats in
                  s.Stats.divergent_branches <- s.Stats.divergent_branches +. 1.
                end;
                if nt > 0 then tstm rt tm;
                if nm - nt > 0 then fstm rt fm) )
      | UF _ | XF _ | XF2 _ | XF4 _ -> unsupported "expected a boolean value")
  | For { l_var; l_init; l_limit; l_step; l_body } -> (
      let init_ce = comp_e st env l_init in
      let init_uniform =
        match init_ce with UI _ | UB _ -> true | _ -> false
      in
      let uniform_candidate =
        init_uniform && not (assigns_var l_var l_body)
      in
      let uniform_compiled =
        if not uniform_candidate then None
        else begin
          let r = fresh_ureg st in
          let env_u = Smap.add l_var (Bloop_u r) env in
          match (comp_e st env_u l_limit, comp_e st env_u l_step) with
          | ((UI _ | UB _) as lim_ce), ((UI _ | UB _) as step_ce) ->
              let finit = isrc init_ce in
              let flim = isrc lim_ce in
              let fstep = isrc step_ce in
              let body = comp_block st env_u l_body in
              Some
                (fun rt m ->
                  inst rt;
                  rt.uregs.(r) <- iread (finit rt m) 0;
                  let rec loop () =
                    let lim = iread (flim rt m) 0 in
                    let go = rt.uregs.(r) < lim in
                    inst rt;
                    if go then begin
                      body rt m;
                      rt.uregs.(r) <- rt.uregs.(r) + iread (fstep rt m) 0;
                      inst rt;
                      loop ()
                    end
                  in
                  loop ())
          | _ -> None
        end
      in
      match uniform_compiled with
      | Some stm -> (env, Some stm)
      | None ->
          let slot = fresh_slot st in
          let env_v = Smap.add l_var (Bloop_v slot) env in
          let finit = isrc init_ce in
          let flim = isrc (comp_e st env_v l_limit) in
          let fstep = isrc (comp_e st env_v l_step) in
          let body = comp_block st env_v l_body in
          ( env,
            Some
              (fun rt m ->
                rt.slots.(slot) <- Interp.VI (Array.make rt.c.Interp.n 0);
                inst rt;
                let iv = slot_vi rt slot in
                (match finit rt m with
                | IS v -> Array.iter (fun l -> iv.(l) <- v) m
                | IA a -> Array.iter (fun l -> iv.(l) <- a.(l)) m
                | IBA a ->
                    Array.iter
                      (fun l -> iv.(l) <- (if a.(l) then 1 else 0))
                      m);
                let rec loop active =
                  let lim = flim rt active in
                  let ns = ref 0 in
                  Array.iter
                    (fun l -> if iv.(l) < iread lim l then incr ns)
                    active;
                  let still = Array.make !ns 0 in
                  let si = ref 0 in
                  Array.iter
                    (fun l ->
                      if iv.(l) < iread lim l then begin
                        still.(!si) <- l;
                        incr si
                      end)
                    active;
                  inst rt;
                  if !ns > 0 then begin
                    body rt still;
                    let stp = fstep rt still in
                    Array.iter (fun l -> iv.(l) <- iv.(l) + iread stp l) still;
                    inst rt;
                    loop still
                  end
                in
                loop m) ))

and comp_assign st env (lv : Ast.lvalue) (e : Ast.expr) : cstmt =
  match lv with
  | Lvar v -> (
      match Smap.find_opt v env with
      | Some (Bscalar (slot, sc)) ->
          let store = store_to_slot slot sc (comp_e st env e) in
          fun rt m ->
            inst rt;
            store rt m
      | Some (Bloop_v slot) ->
          let store = store_to_slot slot Int (comp_e st env e) in
          fun rt m ->
            inst rt;
            store rt m
      | Some (Bloop_u _) -> unsupported "assignment to uniform loop variable"
      | Some _ | None -> unsupported "assignment to non-scalar %s" v)
  | Lfield (Lvar v, fcomp) -> (
      let src = fsrc (comp_e st env e) in
      let comp_of_slot =
        match (Smap.find_opt v env, fcomp) with
        | Some (Bscalar (s, Float2)), Ast.FX -> fun rt -> fst (slot_vf2 rt s)
        | Some (Bscalar (s, Float2)), Ast.FY -> fun rt -> snd (slot_vf2 rt s)
        | Some (Bscalar (s, Float4)), Ast.FX ->
            fun rt ->
              let x, _, _, _ = slot_vf4 rt s in
              x
        | Some (Bscalar (s, Float4)), Ast.FY ->
            fun rt ->
              let _, y, _, _ = slot_vf4 rt s in
              y
        | Some (Bscalar (s, Float4)), Ast.FZ ->
            fun rt ->
              let _, _, z, _ = slot_vf4 rt s in
              z
        | Some (Bscalar (s, Float4)), Ast.FW ->
            fun rt ->
              let _, _, _, w = slot_vf4 rt s in
              w
        | _ -> unsupported "bad vector component assignment to %s" v
      in
      fun rt m ->
        inst rt;
        let g = src rt m in
        let d = comp_of_slot rt in
        match g with
        | FS x -> Array.iter (fun l -> d.(l) <- x) m
        | FA a -> Array.iter (fun l -> d.(l) <- a.(l)) m
        | FI a -> Array.iter (fun l -> d.(l) <- float_of_int a.(l)) m)
  | Lfield _ -> unsupported "unsupported field assignment"
  | Lvec { v_arr; v_width; v_index } -> (
      match Smap.find_opt v_arr env with
      | Some (Bglobal (gslot, _, name)) ->
          let fidx = isrc (comp_e st env v_index) in
          let comps_of =
            match (comp_e st env e, v_width) with
            | XF2 f, 2 ->
                fun rt m ->
                  let x, y = f rt m in
                  [| x; y |]
            | XF4 f, 4 ->
                fun rt m ->
                  let x, y, z, w = f rt m in
                  [| x; y; z; w |]
            | _ -> unsupported "vector store width mismatch on %s" v_arr
          in
          fun rt m ->
            inst rt;
            let iv = fidx rt m in
            let comps = comps_of rt m in
            let g = rt.globals.(gslot) in
            let data = g.Devmem.data in
            let len = Bigarray.Array1.dim data in
            Array.iter
              (fun l ->
                let i0 = iread iv l * v_width in
                for q = 0 to v_width - 1 do
                  let o = i0 + q in
                  if o < 0 || o >= len then
                    Interp.err "out-of-bounds vector store %s[%d] (size %d)"
                      name o len;
                  data.{o} <- comps.(q).(l)
                done)
              m;
            let base = g.Devmem.base in
            Interp.account_global rt.c ~is_store:true ~elt_bytes:(4 * v_width)
              m (fun l -> base + (iread iv l * v_width * 4))
      | _ -> unsupported "vector store to non-global array %s" v_arr)
  | Lindex (arr, idxs) -> (
      let src = fsrc (comp_e st env e) in
      match Smap.find_opt arr env with
      | Some (Bglobal (gslot, strides, name)) ->
          let steps = comp_offsets st env strides idxs in
          if List.for_all (function `U _ -> true | `V _ -> false) steps then
            fun rt m ->
              inst rt;
              let g = src rt m in
              let ga = rt.globals.(gslot) in
              let data = ga.Devmem.data in
              let len = Bigarray.Array1.dim data in
              let o = eval_usteps steps rt m in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds store %s[%d] (size %d)" name o len;
              Array.iter (fun l -> data.{o} <- fread g l) m;
              let addr = ga.Devmem.base + (o * 4) in
              Interp.account_global rt.c ~is_store:true ~elt_bytes:4 m
                (fun _ -> addr)
          else
            fun rt m ->
              inst rt;
              let g = src rt m in
              let ga = rt.globals.(gslot) in
              let data = ga.Devmem.data in
              let len = Bigarray.Array1.dim data in
              let u, offs = eval_steps steps rt m in
              Array.iter
                (fun l ->
                  let o = offs.(l) + u in
                  if o < 0 || o >= len then
                    Interp.err "out-of-bounds store %s[%d] (size %d)" name o
                      len;
                  data.{o} <- fread g l)
                m;
              let base = ga.Devmem.base in
              Interp.account_global rt.c ~is_store:true ~elt_bytes:4 m
                (fun l -> base + ((offs.(l) + u) * 4))
      | Some (Bshared (sslot, strides, len)) ->
          let steps = comp_offsets st env strides idxs in
          let name = arr in
          if List.for_all (function `U _ -> true | `V _ -> false) steps then
            fun rt m ->
              inst rt;
              let g = src rt m in
              let data = rt.shareds.(sslot) in
              let o = eval_usteps steps rt m in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds shared store %s[%d] (size %d)" name
                  o len;
              Array.iter (fun l -> data.(o) <- fread g l) m;
              Interp.account_shared rt.c m (fun _ -> o)
          else
            fun rt m ->
              inst rt;
              let g = src rt m in
              let data = rt.shareds.(sslot) in
              let u, offs = eval_steps steps rt m in
              Array.iter
                (fun l ->
                  let o = offs.(l) + u in
                  if o < 0 || o >= len then
                    Interp.err "out-of-bounds shared store %s[%d] (size %d)"
                      name o len;
                  data.(o) <- fread g l)
                m;
              Interp.account_shared rt.c m (fun l -> offs.(l) + u)
      | Some _ | None -> unsupported "%s is not an array" arr)

and comp_block st env (b : Ast.block) : cstmt =
  snd (comp_block_env st env b)

and comp_block_env st env (b : Ast.block) : binding Smap.t * cstmt =
  let env', rev_stms =
    List.fold_left
      (fun (env, acc) s ->
        let env', stm = comp_stmt st env s in
        (env', match stm with None -> acc | Some f -> f :: acc))
      (env, []) b
  in
  match List.rev rev_stms with
  | [] -> (env', fun _ _ -> ())
  | [ f ] -> (env', f)
  | fs ->
      let a = Array.of_list fs in
      (env', fun rt m -> Array.iter (fun f -> f rt m) a)

(* --- top-level compilation --- *)

type code = {
  co_nslots : int;
  co_nuregs : int;
  co_shared_lens : int array;  (** padded length per shared slot *)
  co_globals : (string * int array) array;
      (** per global slot: parameter name and expected padded strides *)
  co_phases : cstmt array;
  co_tidx : int array;
  co_tidy : int array;
  co_full_mask : int array;
  co_n : int;
  co_warps : float;
  co_launch : Ast.launch;
  co_uses_idx : bool;
  co_uses_idy : bool;
}

let compile_uncached (k : Ast.kernel) (launch : Ast.launch) : code =
  let n = launch.block_x * launch.block_y in
  let st =
    {
      nslots = 0;
      nuregs = 0;
      shared_specs = [];
      global_params = [];
      uses_idx = false;
      uses_idy = false;
      cn = n;
      claunch = launch;
    }
  in
  let layouts = Layout.of_kernel k in
  let env =
    List.fold_left
      (fun env (p : Ast.param) ->
        match p.p_ty with
        | Array { space = Global; _ } ->
            let lay =
              match List.assoc_opt p.p_name layouts with
              | Some l -> l
              | None -> unsupported "no layout for %s" p.p_name
            in
            let strides = Array.of_list (Layout.strides lay) in
            let slot = List.length st.global_params in
            st.global_params <- st.global_params @ [ (p.p_name, strides) ];
            Smap.add p.p_name (Bglobal (slot, strides, p.p_name)) env
        | Scalar Int -> (
            match List.assoc_opt p.p_name k.k_sizes with
            | Some v -> Smap.add p.p_name (Bconst v) env
            | None ->
                unsupported "int parameter %s has no #pragma gpcc dim binding"
                  p.p_name)
        | Scalar _ ->
            unsupported "unsupported scalar parameter type for %s" p.p_name
        | Array _ -> unsupported "non-global array parameter %s" p.p_name)
      Smap.empty k.k_params
  in
  let phases =
    let rec go env acc = function
      | [] -> List.rev acc
      | phase :: rest ->
          let env', stm = comp_block_env st env phase in
          go env' (stm :: acc) rest
    in
    Array.of_list (go env [] (phases_of_body k.k_body))
  in
  let shared_lens =
    let a = Array.make (List.length st.shared_specs) 0 in
    List.iter (fun (_, _, len, slot) -> a.(slot) <- len) st.shared_specs;
    a
  in
  {
    co_nslots = st.nslots;
    co_nuregs = st.nuregs;
    co_shared_lens = shared_lens;
    co_globals = Array.of_list st.global_params;
    co_phases = phases;
    co_tidx = Array.init n (fun l -> l mod launch.block_x);
    co_tidy = Array.init n (fun l -> l / launch.block_x);
    co_full_mask = Array.init n Fun.id;
    co_n = n;
    co_warps = float_of_int ((n + 31) / 32);
    co_launch = launch;
    co_uses_idx = st.uses_idx;
    co_uses_idy = st.uses_idy;
  }

(* --- memoization: one compile per (kernel, launch) pair --- *)

let memo : (string, (code, string) result) Hashtbl.t = Hashtbl.create 32
let memo_mutex = Mutex.create ()
let memo_max = 128

(** Compile a kernel for a launch, memoized by a digest of both. Returns
    [Error reason] when the kernel uses a shape the compiled backend does
    not support (the caller falls back to the reference backend, which
    reproduces the interpreter's runtime errors). *)
let compile (k : Ast.kernel) (launch : Ast.launch) : (code, string) result =
  let key = Digest.string (Marshal.to_string (k, launch) []) in
  Mutex.lock memo_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_mutex)
    (fun () ->
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          let r =
            try Ok (compile_uncached k launch) with
            | Unsupported msg -> Error msg
            | e -> Error (Printexc.to_string e)
          in
          if Hashtbl.length memo >= memo_max then Hashtbl.reset memo;
          Hashtbl.add memo key r;
          r)

(* --- per-run preparation and per-block state --- *)

type prepared = { p_code : code; p_globals : Devmem.arr array }

(** Resolve the compiled code's global parameters against a concrete
    device memory, verifying that the strides assumed at compile time
    match the allocated layouts. *)
let prepare (code : code) (mem : Devmem.t) : prepared =
  let globals =
    Array.map
      (fun (name, strides) ->
        match Devmem.find mem name with
        | None -> unsupported "array %s not allocated" name
        | Some arr ->
            if arr.Devmem.strides <> strides then
              unsupported "layout mismatch for %s" name;
            arr)
      code.co_globals
  in
  { p_code = code; p_globals = globals }

(* shared, never-mutated placeholders: compiled code neither reads nor
   writes the reference environment or the race-check shadow state *)
let dummy_env : (string, Interp.entry) Hashtbl.t = Hashtbl.create 1
let dummy_shadow : (string, Interp.shadow) Hashtbl.t = Hashtbl.create 1

let make_block (p : prepared) (cfg : Config.t) (stats : Stats.t)
    ~(record_tx : bool) ~(bidx : int) ~(bidy : int) : rt =
  let code = p.p_code in
  let c : Interp.bctx =
    {
      cfg;
      stats;
      launch = code.co_launch;
      n = code.co_n;
      warps = code.co_warps;
      tidx = code.co_tidx;
      tidy = code.co_tidy;
      bidx;
      bidy;
      env = dummy_env;
      record_tx;
      txparts = [];
      check = false;
      epoch = 1;
      shadow = dummy_shadow;
    }
  in
  {
    c;
    slots = Array.make (max 1 code.co_nslots) (Interp.VI [||]);
    shareds = Array.map (fun len -> Array.make len 0.0) code.co_shared_lens;
    globals = p.p_globals;
    uregs = Array.make (max 1 code.co_nuregs) 0;
    idx =
      (if code.co_uses_idx then
         Array.map (fun t -> (bidx * code.co_launch.block_x) + t) code.co_tidx
       else [||]);
    idy =
      (if code.co_uses_idy then
         Array.map (fun t -> (bidy * code.co_launch.block_y) + t) code.co_tidy
       else [||]);
  }

let nphases (code : code) = Array.length code.co_phases

(** Execute one phase of the kernel over one block, like
    {!Interp.run_block} on the corresponding phase body. *)
let run_phase (p : prepared) (rt : rt) (i : int) : unit =
  rt.c.Interp.epoch <- rt.c.Interp.epoch + 1;
  p.p_code.co_phases.(i) rt p.p_code.co_full_mask

(* --- fallback accounting (for tests and the bench harness) --- *)

let fallbacks = Atomic.make 0
let note_fallback () = Atomic.incr fallbacks
let fallback_count () = Atomic.get fallbacks

(** Image reconstruction / demosaicing (paper Table 1: "demosaicing",
    27 LOC, 1k-4k): bilinear interpolation of an RGGB Bayer mosaic into
    three color planes. The mosaic carries a 1-pixel border so the naive
    kernel reads its 3x3 neighborhood without guards. *)

let source n =
  let p = n + 2 in
  Printf.sprintf
    {|#pragma gpcc output r g b
__kernel void demosaic(float byr[%d][%d], float r[%d][%d], float g[%d][%d], float b[%d][%d]) {
  float c = byr[idy + 1][idx + 1];
  float up = byr[idy][idx + 1];
  float dn = byr[idy + 2][idx + 1];
  float lf = byr[idy + 1][idx];
  float rt = byr[idy + 1][idx + 2];
  float ul = byr[idy][idx];
  float ur = byr[idy][idx + 2];
  float dl = byr[idy + 2][idx];
  float dr = byr[idy + 2][idx + 2];
  float cross = (up + dn + lf + rt) * 0.25;
  float diag = (ul + ur + dl + dr) * 0.25;
  float horiz = (lf + rt) * 0.5;
  float vert = (up + dn) * 0.5;
  int px = idx %% 2;
  int py = idy %% 2;
  r[idy][idx] = py == 0 ? (px == 0 ? c : horiz) : (px == 0 ? vert : diag);
  g[idy][idx] = px == py ? cross : c;
  b[idy][idx] = py == 0 ? (px == 0 ? diag : vert) : (px == 0 ? horiz : c);
}
|}
    p p n n n n n n

let inputs n =
  let p = n + 2 in
  [ ("byr", Workload.gen ~seed:15 (p * p)) ]

let reference n input =
  let p = n + 2 in
  let byr = input "byr" in
  let at y x = byr.((y * p) + x) in
  let r = Array.make (n * n) 0.0
  and g = Array.make (n * n) 0.0
  and b = Array.make (n * n) 0.0 in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      let c = at (y + 1) (x + 1) in
      let up = at y (x + 1) and dn = at (y + 2) (x + 1) in
      let lf = at (y + 1) x and rt = at (y + 1) (x + 2) in
      let ul = at y x and ur = at y (x + 2) in
      let dl = at (y + 2) x and dr = at (y + 2) (x + 2) in
      let cross = (up +. dn +. lf +. rt) *. 0.25 in
      let diag = (ul +. ur +. dl +. dr) *. 0.25 in
      let horiz = (lf +. rt) *. 0.5 in
      let vert = (up +. dn) *. 0.5 in
      let px = x mod 2 and py = y mod 2 in
      let i = (y * n) + x in
      r.(i) <-
        (if py = 0 then if px = 0 then c else horiz
         else if px = 0 then vert
         else diag);
      g.(i) <- (if px = py then cross else c);
      b.(i) <-
        (if py = 0 then if px = 0 then diag else vert
         else if px = 0 then horiz
         else c)
    done
  done;
  [ ("r", r); ("g", g); ("b", b) ]

let workload : Workload.t =
  {
    name = "demosaic";
    description = "image reconstruction (Bayer demosaicing)";
    source;
    inputs;
    reference;
    flops = (fun n -> 12.0 *. float_of_int (n * n));
    moved_bytes = (fun n -> 4.0 *. 4.0 *. float_of_int (n * n));
    sizes = [ 512; 1024; 2048 ];
    test_size = 64;
    bench_size = 1024;
    tolerance = 1e-5;
    in_cublas = false;
  }

(** Thread-block merge and thread merge (paper Section 3.5) — the paper's
    novel route to loop tiling and unrolling by aggregating fine-grain
    work items. *)

type direction =
  | X
  | Y

(** Merge [n] neighboring thread blocks along X into one. Stagings whose
    data is shared across the merged sub-blocks are guarded with
    [if (tidx < old_width)] (paper Figure 5); cooperative staging loops
    rescale to the new width; per-sub-block tiles are privatized (a
    leading [n] dimension indexed by [tidx / old_width]). Refused (with a
    note) when a staging cannot be classified. *)
val block_merge_x :
  Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> int -> Pass_util.outcome

(** Merge the threads of [n] neighboring blocks along a direction into
    one thread each: direction-dependent statements are replicated with
    substituted positions and renamed locals (paper Figure 7), control
    flow and direction-independent statements keep one copy, and
    direction-invariant global loads inside replicated statements are
    hoisted into a register shared by all replicas — the G2R register
    reuse that drives the paper's merge selection. *)
val thread_merge :
  direction ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  int ->
  Pass_util.outcome

(** Simulated device (off-chip) memory: one virtual address space with
    partition-width-aligned array bases and padded row pitches, shared
    with the static analysis through {!Gpcc_analysis.Layout}. *)

type fmem = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Flat Float64 storage — one plane of lane-contiguous values. OCaml
    [float] is 64-bit, so Float64 keeps every backend bit-identical. *)

val falloc : int -> fmem
(** A zero-filled plane of [max 1 n] elements. *)

type arr = {
  lay : Gpcc_analysis.Layout.t;
  base : int;  (** byte address of element 0, 256-byte aligned *)
  strides : int array;  (** padded strides, precomputed from [lay] *)
  data : fmem;  (** padded storage, row-major over pitches *)
}

type t

val create : unit -> t
val alloc : t -> Gpcc_analysis.Layout.t -> arr

(** Allocate every global array parameter of a kernel. *)
val of_kernel : Gpcc_ast.Ast.kernel -> t

val find : t -> string -> arr option
val find_exn : t -> string -> arr

(** Padded flat offset of a logical multi-index. *)
val offset : arr -> int list -> int

(** Write / read logical row-major contents (padding handled). *)
val write : t -> string -> float array -> unit
val read : t -> string -> float array

(** Fill from a function of the logical flat index. *)
val fill : t -> string -> (int -> float) -> unit

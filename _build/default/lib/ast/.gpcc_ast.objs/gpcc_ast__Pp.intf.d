lib/ast/pp.pp.mli: Ast

lib/sim/devmem.pp.mli: Gpcc_analysis Gpcc_ast

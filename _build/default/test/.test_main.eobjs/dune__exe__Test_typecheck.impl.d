test/test_typecheck.ml: Alcotest Gpcc_ast Gpcc_workloads List Parser Typecheck Util

(** Deprecated boolean-options facade over {!Pipeline}.

    The driver lives in {!Pipeline}; this module keeps the original
    [enable_*] options record compiling as a thin constructor over
    {!Pipeline.t}. New code should build a {!Pipeline.t} (via
    {!Pipeline.default}, {!Pipeline.disable}, {!Pipeline.with_passes})
    and call {!Pipeline.run}. *)

type options = {
  cfg : Gpcc_sim.Config.t;  (** target machine description *)
  target_block_threads : int;  (** 128 / 256 / 512 (Section 4.1) *)
  merge_degree : int;  (** threads merged into one: 4 / 8 / 16 / 32 *)
  enable_vectorize : bool;
  enable_coalesce : bool;
  enable_merge : bool;
  enable_prefetch : bool;
  enable_partition : bool;
  verify : bool;
      (** run {!Gpcc_analysis.Verify} on the input kernel and after every
          fired pass (translation validation); error diagnostics raise
          {!Compile_error} naming the pass that introduced them (on by
          default) *)
}

val default_options : ?cfg:Gpcc_sim.Config.t -> unit -> options
[@@alert
  deprecated
    "Build a Pipeline.t instead: Pipeline.default () |> Pipeline.disable \
     [...] and Pipeline.run ~pipeline."]

val pipeline_of_options : options -> Pipeline.t
(** The pass pipeline the boolean options denote ([enable_vectorize]
    covers both Section-3.1 passes; [enable_merge] covers merge and the
    invariant hoisting that cleans up after it). *)

type step = Pipeline.step = {
  step_name : string;
  pass : string;
  fired : bool;
  remark : Remark.t;
  kernel_after : Gpcc_ast.Ast.kernel;
  launch_after : Gpcc_ast.Ast.launch;
  diagnostics : Gpcc_analysis.Verify.diagnostic list;
      (** verifier output after this pass (empty when the pass did not
          fire or [verify] is off; never contains errors — those raise) *)
}

type result = Pipeline.result = {
  kernel : Gpcc_ast.Ast.kernel;
  launch : Gpcc_ast.Ast.launch;
  steps : step list;
}

exception Compile_error of string

(** All verifier diagnostics accumulated across the pipeline's steps. *)
val diagnostics : result -> Gpcc_analysis.Verify.diagnostic list

(** Whether an exception is a {!Compile_error} raised by translation
    validation (as opposed to, e.g., a missing thread domain) — lets
    {!Explore} classify verifier-rejected candidates separately. *)
val verifier_rejected : exn -> bool

(** Run the pipeline the options denote (the full default pipeline when
    [opts] is omitted). See {!Pipeline.run}. *)
val run : ?opts:options -> Gpcc_ast.Ast.kernel -> result

(** Cumulative pipeline prefixes, for the paper's Figure 12: one
    [(label, kernel, launch)] per stage, starting from the naive kernel
    with its natural hand-written launch. See {!Pipeline.staged}. *)
val staged :
  ?cfg:Gpcc_sim.Config.t ->
  ?target_block_threads:int ->
  ?merge_degree:int ->
  Gpcc_ast.Ast.kernel ->
  (string * Gpcc_ast.Ast.kernel * Gpcc_ast.Ast.launch) list

(** Human-readable per-pass report of a compilation. *)
val report : result -> string

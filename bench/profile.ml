(* Single-workload profiling driver for backend work: run one workload's
   naive kernel repeatedly on one backend, serially, so `perf` / OCaml's
   own profilers see a steady hot loop without the bench harness around
   it. Usage: profile.exe <workload> <vector|compiled|ref> <reps> *)
module W = Gpcc_workloads.Workload

let () =
  let wname = Sys.argv.(1) in
  let backend =
    match Sys.argv.(2) with
    | "vector" -> Gpcc_sim.Launch.Vector
    | "compiled" -> Gpcc_sim.Launch.Compiled
    | _ -> Gpcc_sim.Launch.Reference
  in
  let reps = int_of_string Sys.argv.(3) in
  let w = Gpcc_workloads.Registry.find_exn wname in
  let n = w.W.test_size in
  let k = W.parse w n in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  let cfg = Gpcc_sim.Config.gtx280 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    let mem = Gpcc_sim.Devmem.of_kernel k in
    List.iter
      (fun (nm, data) -> Gpcc_sim.Devmem.write mem nm data)
      (w.W.inputs n);
    ignore
      (Gpcc_sim.Launch.run ~mode:Gpcc_sim.Launch.Full ~backend ~jobs:1 cfg k
         launch mem)
  done;
  Printf.printf "%s %s: %.3f s for %d reps\n" wname Sys.argv.(2)
    (Unix.gettimeofday () -. t0)
    reps;
  let pc = Gpcc_sim.Launch.perf_counters () in
  Printf.printf
    "  request memo %d hits / %d misses, plane memo %d hits / %d misses, \
     closed-form credits %d\n"
    pc.Gpcc_sim.Launch.pc_memo_hits pc.Gpcc_sim.Launch.pc_memo_misses
    pc.Gpcc_sim.Launch.pc_plane_hits pc.Gpcc_sim.Launch.pc_plane_misses
    pc.Gpcc_sim.Launch.pc_closed_form

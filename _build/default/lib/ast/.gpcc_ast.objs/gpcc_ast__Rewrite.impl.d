lib/ast/rewrite.pp.ml: Ast List Option Printf String

lib/core/deploy.pp.ml: Buffer Compiler Explore Gpcc_ast Gpcc_sim List Printf String

(** Per-thread register-pressure estimation.

    The paper's compiler balances register-based data reuse (thread merge,
    prefetching) against the number of active threads an SM can hold; both
    decisions need an estimate of registers per thread. We count, like a
    simple graph-coloring-free allocator would:
    - one 32-bit register per live scalar declaration (vectors count their
      width) and per loop iterator,
    - one per scalar kernel parameter (kept in a register),
    - a fixed overhead for address arithmetic and the thread-position
      values the kernel actually uses. *)

open Gpcc_ast

let base_overhead = 4  (* address computation temporaries, kernel pointer *)

let estimate (k : Ast.kernel) : int =
  let decls =
    Rewrite.declared_vars k.k_body
    |> List.fold_left
         (fun acc (_, ty) ->
           match ty with
           | Ast.Scalar s -> acc + Ast.scalar_regs s
           | Ast.Array { space = Shared | Global; _ } -> acc
           | Ast.Array { space = Register; elt; dims } ->
               (* register arrays (unrolled): full footprint *)
               acc + (Ast.scalar_regs elt * List.fold_left ( * ) 1 dims))
         0
  in
  let params =
    List.fold_left
      (fun acc (p : Ast.param) ->
        match p.p_ty with
        | Scalar s -> acc + Ast.scalar_regs s
        | Array _ -> acc + 1 (* base pointer *))
      0 k.k_params
  in
  let builtin_regs =
    List.length
      (List.filter
         (fun b -> Rewrite.block_uses_builtin b k.k_body)
         [ Idx; Idy; Tidx; Tidy ])
  in
  base_overhead + decls + params + builtin_regs

(** Shared memory consumed by one thread block, in bytes. *)
let shared_bytes (k : Ast.kernel) : int =
  Rewrite.declared_vars k.k_body
  |> List.fold_left
       (fun acc (_, ty) ->
         match ty with
         | Ast.Array { space = Shared; elt; dims } ->
             acc + (Ast.scalar_size elt * List.fold_left ( * ) 1 dims)
         | _ -> acc)
       0

(** All workloads of the paper's Table 1, in its order. *)

let all : Workload.t list =
  [
    Tmv.workload;
    Mm.workload;
    Mv.workload;
    Vv.workload;
    Rd.workload;
    Strsm.workload;
    Conv.workload;
    Tp.workload;
    Demosaic.workload;
    Imregionmax.workload;
  ]

(** Extension workloads beyond Table 1. *)
let extras : Workload.t list = [ Rd_complex.workload; Fft.workload ]

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) (all @ extras)

let find_exn name =
  match find name with
  | Some w -> w
  | None -> invalid_arg ("unknown workload " ^ name)

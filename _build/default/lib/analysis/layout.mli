(** Memory layouts of global and shared arrays. Global arrays pad the
    minor dimension to 16 words (the paper's Section 3.3 alignment
    requirement); the analysis and the simulator share these layouts so
    flattened affine addresses match actual allocation. *)

type t = {
  name : string;
  elt : Gpcc_ast.Ast.scalar;
  dims : int list;  (** logical extents, outermost first *)
  pitches : int list;  (** padded extents (minor padded) *)
}

val round_up : int -> int -> int

(** Layout for an array type; minor dimension padded unless [pad:false]
    (shared arrays keep their declared shape). *)
val make : ?pad:bool -> string -> Gpcc_ast.Ast.array_ty -> t

(** Element stride of each dimension. *)
val strides : t -> int list

val size_elems : t -> int
val size_bytes : t -> int

(** Flatten a multi-dimensional affine index into one element offset.
    Raises [Invalid_argument] on rank mismatch. *)
val flatten : t -> Affine.t list -> Affine.t

type table = (string * t) list

(** One entry per global array parameter and shared declaration. *)
val of_kernel : ?pad:bool -> Gpcc_ast.Ast.kernel -> table

val find : table -> string -> t option
val find_exn : table -> string -> t
